//! Executors: how the runtime runs functional kernel work.
//!
//! Cost accounting (simulated clock, coherence, profile counters) is always
//! performed eagerly and sequentially by [`crate::Runtime`] — it is cheap and
//! inherently program-ordered. What an [`Executor`] schedules is the
//! *functional* work of each launch: executing the launch's compiled kernel
//! (an `Arc<dyn CompiledKernel>` produced by whichever `kernel::KernelBackend`
//! is configured) over real region data, which dominates the wall-clock time
//! of functional runs. Executors are backend-agnostic: they run whatever
//! artifact the launch carries.
//!
//! Two executors are provided:
//!
//! * [`SerialExecutor`] runs each launch's work immediately on the submitting
//!   thread, exactly as the pre-executor runtime did. It is the determinism
//!   baseline the equivalence tests compare against.
//! * [`WorkStealingExecutor`] spawns one worker per simulated GPU (capped at
//!   the host's available parallelism). Submitted launches enter a
//!   dependency graph built by [`crate::DepTracker`]; launches whose hazards
//!   are satisfied are pushed onto per-worker deques. A worker pops its own
//!   deque LIFO and steals FIFO from its siblings when empty, so independent
//!   launches overlap while conflicting launches retain program order.
//!
//! Both executors defer errors to [`Executor::flush`]. For error-free batches
//! the two are observably identical: same region contents, and simulated time
//! never depends on the executor (accounting stays on the submitting thread);
//! only the host wall-clock differs. When a launch fails, the failure is
//! **contained to its dependence cone**: both executors track region hazards
//! (the same [`crate::DepTracker`] edges that order execution) and skip only
//! launches downstream of a failed one, recording a structured
//! [`LaunchFailure`] per skipped launch. Independent launches complete
//! normally, so their region contents are trustworthy even after a failed
//! flush; only regions written inside a failed cone are left at their
//! pre-cone contents (see `docs/RUNTIME.md` and `docs/RESILIENCE.md`).

use std::collections::{HashMap, VecDeque};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;

use ir::{Privilege, Rect};
use kernel::CompiledKernel;

use crate::deps::{AccessSummary, DepTracker};
use crate::region::{RegionHandle, RegionId};
use crate::runtime::RuntimeError;

/// Which executor a [`crate::Runtime`] uses for functional work.
///
/// The kind can also be chosen through the `DIFFUSE_EXECUTOR` environment
/// variable (see [`ExecutorKind::from_env`]), which is how the CI matrix and
/// the benchmark binaries force one executor for a whole process.
///
/// # Example
///
/// ```
/// use runtime::ExecutorKind;
///
/// assert_eq!(ExecutorKind::default(), ExecutorKind::Serial);
/// let parallel = ExecutorKind::WorkStealing { workers: Some(4) };
/// assert_ne!(parallel, ExecutorKind::Serial);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ExecutorKind {
    /// Run functional work inline on the submitting thread (deterministic
    /// baseline; the default).
    #[default]
    Serial,
    /// Run functional work on a work-stealing pool.
    WorkStealing {
        /// Worker count; `None` means one worker per simulated GPU, capped at
        /// the host's available parallelism.
        workers: Option<usize>,
    },
}

impl ExecutorKind {
    /// Reads the executor choice from the `DIFFUSE_EXECUTOR` environment
    /// variable: `parallel`, `work-stealing` or `ws` select
    /// [`ExecutorKind::WorkStealing`]; anything else (or the variable being
    /// unset) selects [`ExecutorKind::Serial`].
    ///
    /// # Example
    ///
    /// ```
    /// use runtime::ExecutorKind;
    ///
    /// // With DIFFUSE_EXECUTOR unset this is the serial default.
    /// let kind = ExecutorKind::from_env();
    /// assert!(matches!(kind, ExecutorKind::Serial | ExecutorKind::WorkStealing { .. }));
    /// ```
    pub fn from_env() -> Self {
        match std::env::var("DIFFUSE_EXECUTOR").as_deref() {
            Ok("parallel") | Ok("work-stealing") | Ok("ws") => {
                ExecutorKind::WorkStealing { workers: None }
            }
            Ok("serial") | Ok("") | Err(_) => ExecutorKind::Serial,
            Ok(other) => {
                // A typo silently running the wrong leg would invalidate any
                // serial-vs-parallel comparison; warn once, then default.
                static WARNED: std::sync::Once = std::sync::Once::new();
                let other = other.to_string();
                WARNED.call_once(|| {
                    eprintln!(
                        "warning: unrecognized DIFFUSE_EXECUTOR value {other:?} \
                         (expected \"serial\", \"parallel\", \"work-stealing\" or \"ws\"); \
                         using the serial executor"
                    );
                });
                ExecutorKind::Serial
            }
        }
    }

    /// The number of workers this kind uses on a machine with `gpus` simulated
    /// GPUs (1 for the serial executor).
    pub fn worker_count(&self, gpus: usize) -> usize {
        match self {
            ExecutorKind::Serial => 1,
            ExecutorKind::WorkStealing { workers: Some(n) } => (*n).max(1),
            ExecutorKind::WorkStealing { workers: None } => {
                let host = std::thread::available_parallelism()
                    .map(|n| n.get())
                    .unwrap_or(1);
                gpus.clamp(1, host)
            }
        }
    }
}

/// One buffer of a launch's functional work: a region handle, the rectangle
/// the launch accesses, and the access privilege.
#[derive(Debug, Clone)]
pub struct BufferAccess {
    /// The region accessed.
    pub region: RegionId,
    /// Shared handle to the region's data.
    pub handle: RegionHandle,
    /// The bounding box of the sub-stores the launch touches.
    pub rect: Rect,
    /// The access privilege.
    pub privilege: Privilege,
}

impl BufferAccess {
    /// This access summarized for dependency tracking (reductions count as
    /// writes).
    pub fn summary(&self) -> AccessSummary {
        AccessSummary::from_privilege(self.region, self.privilege)
    }
}

/// One launch that failed (or was skipped) in a batch, with its structured
/// error — drained after a flush via [`Executor::drain_failures`] /
/// `Runtime::take_failures`.
#[derive(Debug, Clone, PartialEq)]
pub struct LaunchFailure {
    /// The launch's name.
    pub launch: String,
    /// Why it failed: its own error, or [`RuntimeError::Poisoned`] naming
    /// the upstream launch whose failure made its inputs untrustworthy.
    pub error: RuntimeError,
}

/// A borrowed description of one launch's functional work, as handed to
/// [`Executor::submit`]. The kernel, scalars and local-buffer sizes borrow
/// the launch (so the serial executor runs with zero copies); only the
/// resolved region accesses are owned, since handles are cheap `Arc` clones.
///
/// A parallel executor converts the request to an owned [`FunctionalWork`]
/// with [`WorkRequest::into_owned_work`] before shipping it to a worker.
#[derive(Debug)]
pub struct WorkRequest<'a> {
    /// Launch name (for diagnostics).
    pub name: &'a str,
    /// The compiled kernel to execute.
    pub kernel: &'a Arc<dyn CompiledKernel>,
    /// Scalar kernel parameters.
    pub scalars: &'a [f64],
    /// Element counts of the task-local buffers following the region buffers.
    pub local_buffer_lens: &'a [usize],
    /// Region buffers in kernel-buffer order.
    pub accesses: Vec<BufferAccess>,
    /// Injected device-fault attempts to replay before the committing run:
    /// each executes a prefix of the stage protocol, then rolls every written
    /// rect back (a killed attempt commits nothing). 0 outside fault
    /// injection — see `docs/RESILIENCE.md`.
    pub failed_attempts: u32,
}

impl WorkRequest<'_> {
    /// Clones the borrowed parts (and moves the owned accesses) into a
    /// self-contained [`FunctionalWork`] that can cross threads.
    pub fn into_owned_work(self) -> FunctionalWork {
        FunctionalWork {
            name: self.name.to_string(),
            kernel: Arc::clone(self.kernel),
            scalars: self.scalars.to_vec(),
            local_buffer_lens: self.local_buffer_lens.to_vec(),
            accesses: self.accesses,
            failed_attempts: self.failed_attempts,
        }
    }
}

/// The functional portion of one task launch, self-contained so it can run on
/// any worker thread: the compiled kernel (a cheap `Arc` clone — backends
/// compile once, workers share the artifact), its scalars, the region buffers
/// it accesses and the sizes of its task-local temporaries.
#[derive(Debug, Clone)]
pub struct FunctionalWork {
    /// Launch name (for diagnostics).
    pub name: String,
    /// The compiled kernel to execute.
    pub kernel: Arc<dyn CompiledKernel>,
    /// Scalar kernel parameters.
    pub scalars: Vec<f64>,
    /// Region buffers in kernel-buffer order.
    pub accesses: Vec<BufferAccess>,
    /// Element counts of the task-local buffers following the region buffers.
    pub local_buffer_lens: Vec<usize>,
    /// Injected device-fault attempts replayed (and rolled back) before the
    /// committing run.
    pub failed_attempts: u32,
}

impl FunctionalWork {
    /// Views this owned work as a [`WorkRequest`] borrowing everything but
    /// the accesses (used by tests to reach [`Executor::submit`]).
    pub fn as_request(&self) -> WorkRequest<'_> {
        WorkRequest {
            name: &self.name,
            kernel: &self.kernel,
            scalars: &self.scalars,
            local_buffer_lens: &self.local_buffer_lens,
            accesses: self.accesses.clone(),
            failed_attempts: self.failed_attempts,
        }
    }
}

/// Runs one launch's functional work to completion on the calling thread.
/// All parts are borrowed, so both the serial inline path and the worker
/// path execute without copying the work description.
///
/// When `failed_attempts > 0` (fault injection, see `docs/RESILIENCE.md`),
/// each killed attempt first executes a prefix of the stage protocol and is
/// then rolled back from a snapshot of its written rects: a launch killed by
/// a simulated device fault commits nothing, so the retry that follows starts
/// from exactly the pre-launch region contents (no torn writes). The
/// rollback is invisible to concurrent launches because the executors block
/// every dependent until the launch completes successfully.
pub(crate) fn run_functional(
    kernel: &dyn CompiledKernel,
    scalars: &[f64],
    local_buffer_lens: &[usize],
    accesses: &[BufferAccess],
    failed_attempts: u32,
) -> Result<(), RuntimeError> {
    let num_stages = kernel.module().num_stages();
    for attempt in 0..failed_attempts {
        // Snapshot every written rect, run a (deterministic, attempt-varying)
        // prefix of the stages, then restore — the discarded attempt really
        // exercises the write path before the "device" kills it.
        let snapshots: Vec<Option<Vec<f64>>> = accesses
            .iter()
            .map(|access| {
                (access.privilege.writes() || access.privilege.reduces())
                    .then(|| access.handle.read_rect(&access.rect))
            })
            .collect();
        let stages = if num_stages == 0 {
            0
        } else {
            attempt as usize % num_stages + 1
        };
        // A kernel error inside a killed attempt is moot (the attempt is
        // discarded either way); the committing run below will resurface it.
        let _ = run_stages(kernel, scalars, local_buffer_lens, accesses, stages);
        for (access, snapshot) in accesses.iter().zip(&snapshots) {
            if let Some(snapshot) = snapshot {
                access.handle.write_rect(&access.rect, snapshot);
            }
        }
    }
    run_stages(kernel, scalars, local_buffer_lens, accesses, num_stages)
}

/// The committing stage loop: stages execute one at a time with
/// copy-in/copy-out around each stage so that aliasing views of the same
/// region stay coherent through the parent region between stages (the same
/// protocol the serial runtime always used).
fn run_stages(
    kernel: &dyn CompiledKernel,
    scalars: &[f64],
    local_buffer_lens: &[usize],
    accesses: &[BufferAccess],
    stages: usize,
) -> Result<(), RuntimeError> {
    let num_reqs = accesses.len();
    let mut locals: Vec<Vec<f64>> = local_buffer_lens
        .iter()
        .map(|&len| vec![0.0; len])
        .collect();
    for stage in 0..stages {
        // Copy-in.
        let mut buffers: Vec<Vec<f64>> = Vec::with_capacity(num_reqs + locals.len());
        for access in accesses {
            buffers.push(access.handle.read_rect(&access.rect));
        }
        for local in &locals {
            buffers.push(local.clone());
        }
        // Execute.
        kernel.execute_stage(stage, &mut buffers, scalars)?;
        // Copy-out written requirements and persist locals.
        for (i, access) in accesses.iter().enumerate() {
            if access.privilege.writes() || access.privilege.reduces() {
                access.handle.write_rect(&access.rect, &buffers[i]);
            }
        }
        for (j, local) in locals.iter_mut().enumerate() {
            *local = std::mem::take(&mut buffers[num_reqs + j]);
        }
    }
    Ok(())
}

/// Schedules the functional work of task launches.
///
/// Implementations must preserve program order between conflicting launches
/// (same region, at least one writer) and may freely overlap independent
/// ones. Errors are deferred: [`Executor::submit`] never fails, and the first
/// failure of a batch (by submission order — the root of the earliest failed
/// cone) is returned by the next [`Executor::flush`]. A failure poisons only
/// its **dependence cone**: launches with a hazard path from the failed one
/// are skipped and recorded as [`RuntimeError::Poisoned`]; launches unordered
/// with it complete normally under both executors, so region contents outside
/// failed cones are trustworthy after a failed flush. Per-launch records are
/// available from [`Executor::drain_failures`].
///
/// # Example
///
/// ```
/// use runtime::{Runtime, RuntimeConfig, ExecutorKind};
/// use machine::MachineConfig;
///
/// // Executors are chosen through RuntimeConfig rather than constructed
/// // directly; the runtime reports which one it is using.
/// let config = RuntimeConfig::functional(MachineConfig::with_gpus(4))
///     .with_executor(ExecutorKind::WorkStealing { workers: Some(2) });
/// let rt = Runtime::new(config);
/// assert_eq!(rt.executor_kind(), ExecutorKind::WorkStealing { workers: Some(2) });
/// ```
pub trait Executor: std::fmt::Debug + Send {
    /// The kind this executor implements.
    fn kind(&self) -> ExecutorKind;

    /// Enqueues one launch's functional work. Hazard ordering against earlier
    /// submissions is the executor's responsibility. The request borrows the
    /// launch; an executor that defers execution clones what it keeps
    /// ([`WorkRequest::into_owned_work`]).
    fn submit(&mut self, work: WorkRequest<'_>);

    /// Records a launch as failed **without running it**: its accesses enter
    /// hazard tracking so every downstream launch is skipped as
    /// [`RuntimeError::Poisoned`], and `error` becomes its failure record.
    /// Used by the runtime when fault injection abandons a launch before its
    /// functional work is submitted.
    fn poison(&mut self, name: &str, accesses: &[AccessSummary], error: RuntimeError);

    /// Blocks until every submitted launch has completed, returning the first
    /// failure of the batch (by submission order) and resetting hazard state
    /// for the next batch. Structured per-launch records survive the flush
    /// until [`Executor::drain_failures`] collects them.
    ///
    /// # Errors
    ///
    /// Returns the first [`RuntimeError`] raised by any launch since the last
    /// flush.
    fn flush(&mut self) -> Result<(), RuntimeError>;

    /// Drains every per-launch failure record accumulated since the last
    /// drain, in submission order (failed-cone roots precede their skipped
    /// dependents).
    fn drain_failures(&mut self) -> Vec<LaunchFailure>;
}

/// The deterministic baseline executor: runs each launch inline at submit
/// time on the calling thread.
///
/// # Example
///
/// ```
/// use runtime::{ExecutorKind, SerialExecutor, Executor};
///
/// let ex = SerialExecutor::new();
/// assert_eq!(ex.kind(), ExecutorKind::Serial);
/// ```
#[derive(Debug, Default)]
pub struct SerialExecutor {
    /// Hazard tracking for cone containment: which earlier launches of the
    /// current batch each new launch depends on.
    tracker: DepTracker,
    next_id: u64,
    /// Failed launches of the current batch, by id (for poison propagation).
    failed: HashMap<u64, String>,
    /// Failure records of the current batch, in submission order.
    failures: Vec<LaunchFailure>,
    /// Records already reported by a flush, awaiting `drain_failures`.
    drained: Vec<LaunchFailure>,
}

impl SerialExecutor {
    /// Creates a serial executor.
    pub fn new() -> Self {
        SerialExecutor::default()
    }

    fn record_failure(&mut self, id: u64, name: &str, error: RuntimeError) {
        self.failed.insert(id, name.to_string());
        self.failures.push(LaunchFailure {
            launch: name.to_string(),
            error,
        });
    }
}

impl Drop for SerialExecutor {
    fn drop(&mut self) {
        // Failures in `drained` were already reported through a flush error;
        // only un-flushed ones would otherwise vanish silently.
        for f in &self.failures {
            eprintln!(
                "warning: discarding deferred launch error at executor shutdown: {}",
                f.error
            );
        }
    }
}

impl Executor for SerialExecutor {
    fn kind(&self) -> ExecutorKind {
        ExecutorKind::Serial
    }

    fn submit(&mut self, work: WorkRequest<'_>) {
        let id = self.next_id;
        self.next_id += 1;
        let summaries: Vec<AccessSummary> =
            work.accesses.iter().map(BufferAccess::summary).collect();
        let deps = self.tracker.record(id, &summaries);
        // Cone containment: skip only launches downstream of a failure.
        if let Some(upstream) = deps.iter().find_map(|d| self.failed.get(d)) {
            let error = RuntimeError::Poisoned {
                launch: work.name.to_string(),
                upstream: upstream.clone(),
            };
            self.record_failure(id, work.name, error);
            return;
        }
        // Runs inline from the borrowed request: no clones on this path.
        // Panics are caught for parity with the worker pool: both executors
        // report a dying launch as RuntimeError::Panicked at flush.
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            run_functional(
                work.kernel.as_ref(),
                work.scalars,
                work.local_buffer_lens,
                &work.accesses,
                work.failed_attempts,
            )
        }))
        .unwrap_or_else(|payload| Err(RuntimeError::Panicked(panic_message(&payload))));
        if let Err(e) = result {
            self.record_failure(id, work.name, e);
        }
    }

    fn poison(&mut self, name: &str, accesses: &[AccessSummary], error: RuntimeError) {
        let id = self.next_id;
        self.next_id += 1;
        let _ = self.tracker.record(id, accesses);
        self.record_failure(id, name, error);
    }

    fn flush(&mut self) -> Result<(), RuntimeError> {
        self.tracker.reset();
        self.failed.clear();
        let first = self.failures.first().map(|f| f.error.clone());
        self.drained.append(&mut self.failures);
        match first {
            Some(e) => Err(e),
            None => Ok(()),
        }
    }

    fn drain_failures(&mut self) -> Vec<LaunchFailure> {
        let mut out = std::mem::take(&mut self.drained);
        out.append(&mut self.failures);
        out
    }
}

/// A node of the in-flight dependency graph.
#[derive(Debug)]
struct TaskNode {
    /// Launch name (failure records and poison propagation).
    name: String,
    /// The work to run; taken by the executing worker.
    work: Option<FunctionalWork>,
    /// Set when an upstream launch in this node's dependence cone failed:
    /// the node is skipped and this error recorded instead of running.
    fail_with: Option<RuntimeError>,
    /// Unfinished launches this one waits for.
    unmet: usize,
    /// Launches waiting for this one.
    dependents: Vec<u64>,
}

/// Scheduler state shared between the submitting thread and the workers.
#[derive(Debug)]
struct SchedState {
    /// In-flight launches by id (removed on completion).
    tasks: HashMap<u64, TaskNode>,
    /// Per-worker ready deques (own end: back/LIFO; steal end: front/FIFO).
    queues: Vec<VecDeque<u64>>,
    /// Launches submitted but not yet completed.
    pending: usize,
    /// Completed-but-failed launches of the current batch, by id, so later
    /// submissions depending on them poison at submit time.
    failed: HashMap<u64, String>,
    /// Failure records of the current batch, tagged with launch id (workers
    /// finish out of order; flush sorts by id to find the first).
    failures: Vec<(u64, LaunchFailure)>,
    /// Set once at drop; workers exit when they run dry.
    shutdown: bool,
    /// Debug-only happens-before checker (`DIFFUSE_VERIFY` truthy in a debug
    /// build): every functional execution asserts its conflicting
    /// predecessors are ordered by recorded dependence edges and already
    /// complete. `None` in release builds or when not requested — zero cost.
    hb: Option<crate::deps::HbChecker>,
}

#[derive(Debug)]
struct Shared {
    state: Mutex<SchedState>,
    /// Signals workers that a queue gained work (or shutdown began).
    work_cv: Condvar,
    /// Signals waiters (flush, backpressured submit) that `pending` dropped.
    done_cv: Condvar,
    /// Submission backpressure: `submit` blocks while `pending` is at this
    /// bound, so the in-flight window (and the memory its region handles keep
    /// alive) stays bounded no matter how far ahead the submitting thread
    /// runs.
    max_pending: usize,
}

/// The parallel executor: a pool of workers (one per simulated GPU, capped at
/// host parallelism) over per-worker deques with stealing.
///
/// Submission happens on the runtime's thread: the launch's region accesses
/// run through a [`DepTracker`]; if any hazard is outstanding the launch
/// parks in the graph, otherwise it is pushed onto a deque. A worker that
/// completes a launch decrements its dependents and pushes the newly-ready
/// ones onto its *own* deque (work-first scheduling), stealing from siblings
/// when it runs dry.
///
/// Region contents after a flush are identical to the serial executor's by
/// construction — conflicting launches are ordered, independent launches
/// touch disjoint data — which the `executor_equivalence` proptest suite
/// verifies.
///
/// # Example
///
/// ```
/// use runtime::{Executor, ExecutorKind, WorkStealingExecutor};
///
/// let mut pool = WorkStealingExecutor::new(2);
/// assert_eq!(pool.workers(), 2);
/// pool.flush().unwrap(); // nothing submitted: trivially complete
/// ```
pub struct WorkStealingExecutor {
    shared: Arc<Shared>,
    workers: Vec<JoinHandle<()>>,
    tracker: DepTracker,
    next_task: u64,
    requested: Option<usize>,
    /// Records already reported by a flush, awaiting `drain_failures`.
    drained: Vec<LaunchFailure>,
}

impl std::fmt::Debug for WorkStealingExecutor {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("WorkStealingExecutor")
            .field("workers", &self.workers.len())
            .field("next_task", &self.next_task)
            .finish()
    }
}

impl WorkStealingExecutor {
    /// Spawns a pool with `workers` workers (at least 1).
    pub fn new(workers: usize) -> Self {
        Self::with_requested(workers.max(1), Some(workers.max(1)))
    }

    /// Spawns a pool for a machine with `gpus` simulated GPUs: one worker per
    /// GPU, capped at the host's available parallelism.
    pub fn for_gpus(gpus: usize) -> Self {
        let kind = ExecutorKind::WorkStealing { workers: None };
        Self::with_requested(kind.worker_count(gpus), None)
    }

    fn with_requested(workers: usize, requested: Option<usize>) -> Self {
        let shared = Arc::new(Shared {
            state: Mutex::new(SchedState {
                tasks: HashMap::new(),
                queues: vec![VecDeque::new(); workers],
                pending: 0,
                failed: HashMap::new(),
                failures: Vec::new(),
                shutdown: false,
                hb: (cfg!(debug_assertions) && crate::deps::HbChecker::requested_by_env())
                    .then(crate::deps::HbChecker::default),
            }),
            work_cv: Condvar::new(),
            done_cv: Condvar::new(),
            max_pending: (workers * 4).max(16),
        });
        let handles = (0..workers)
            .map(|id| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("diffuse-worker-{id}"))
                    .spawn(move || worker_loop(id, &shared))
                    .expect("failed to spawn executor worker")
            })
            .collect();
        WorkStealingExecutor {
            shared,
            workers: handles,
            tracker: DepTracker::new(),
            next_task: 0,
            requested,
            drained: Vec::new(),
        }
    }

    /// Number of worker threads in the pool.
    pub fn workers(&self) -> usize {
        self.workers.len()
    }
}

impl Executor for WorkStealingExecutor {
    fn kind(&self) -> ExecutorKind {
        ExecutorKind::WorkStealing {
            workers: self.requested,
        }
    }

    fn submit(&mut self, work: WorkRequest<'_>) {
        let id = self.next_task;
        self.next_task += 1;
        let summaries: Vec<AccessSummary> = work.accesses.iter().map(BufferAccess::summary).collect();
        let deps = self.tracker.record(id, &summaries);
        // Crossing to a worker thread requires ownership.
        let work = work.into_owned_work();
        let mut state = self.shared.state.lock().unwrap();
        // Backpressure: never run more than max_pending launches ahead of the
        // workers, bounding the memory the in-flight window keeps alive.
        while state.pending >= self.shared.max_pending {
            state = self.shared.done_cv.wait(state).unwrap();
        }
        if let Some(hb) = state.hb.as_mut() {
            hb.register(id, &summaries, &deps);
        }
        // Hazards against launches that completed successfully are satisfied;
        // hazards against completed-but-failed launches poison this one now.
        let mut unmet = 0;
        let mut fail_with = None;
        for dep in deps {
            if let Some(node) = state.tasks.get_mut(&dep) {
                node.dependents.push(id);
                unmet += 1;
            } else if let Some(upstream) = state.failed.get(&dep) {
                if fail_with.is_none() {
                    fail_with = Some(RuntimeError::Poisoned {
                        launch: work.name.clone(),
                        upstream: upstream.clone(),
                    });
                }
            }
        }
        state.pending += 1;
        let name = work.name.clone();
        state.tasks.insert(
            id,
            TaskNode {
                name,
                work: Some(work),
                fail_with,
                unmet,
                dependents: Vec::new(),
            },
        );
        if unmet == 0 {
            let q = (id % state.queues.len() as u64) as usize;
            state.queues[q].push_back(id);
            drop(state);
            self.shared.work_cv.notify_one();
        }
    }

    fn poison(&mut self, name: &str, accesses: &[AccessSummary], error: RuntimeError) {
        let id = self.next_task;
        self.next_task += 1;
        let deps = self.tracker.record(id, accesses);
        // The launch never runs: it is born completed-and-failed, so every
        // later submission depending on it poisons at submit time.
        let mut state = self.shared.state.lock().unwrap();
        if let Some(hb) = state.hb.as_mut() {
            hb.register(id, accesses, &deps);
            hb.complete(id);
        }
        state.failed.insert(id, name.to_string());
        state.failures.push((
            id,
            LaunchFailure {
                launch: name.to_string(),
                error,
            },
        ));
    }

    fn flush(&mut self) -> Result<(), RuntimeError> {
        let mut state = self.shared.state.lock().unwrap();
        while state.pending > 0 {
            state = self.shared.done_cv.wait(state).unwrap();
        }
        self.tracker.reset();
        if let Some(hb) = state.hb.as_mut() {
            hb.reset();
        }
        state.failed.clear();
        let mut batch = std::mem::take(&mut state.failures);
        drop(state);
        // First failure by submission id: the root of the earliest failed
        // cone, since a root always precedes its poisoned dependents.
        batch.sort_by_key(|(id, _)| *id);
        let first = batch.first().map(|(_, f)| f.error.clone());
        self.drained.extend(batch.into_iter().map(|(_, f)| f));
        match first {
            Some(e) => Err(e),
            None => Ok(()),
        }
    }

    fn drain_failures(&mut self) -> Vec<LaunchFailure> {
        let mut rest = {
            let mut state = self.shared.state.lock().unwrap();
            std::mem::take(&mut state.failures)
        };
        rest.sort_by_key(|(id, _)| *id);
        let mut out = std::mem::take(&mut self.drained);
        out.extend(rest.into_iter().map(|(_, f)| f));
        out
    }
}

impl Drop for WorkStealingExecutor {
    fn drop(&mut self) {
        // Complete outstanding work so region contents are final, then stop.
        // An error here has no caller left to reach — don't lose it silently.
        if let Err(e) = self.flush() {
            eprintln!("warning: discarding deferred launch error at executor shutdown: {e}");
        }
        {
            let mut state = self.shared.state.lock().unwrap();
            state.shutdown = true;
        }
        self.shared.work_cv.notify_all();
        for handle in self.workers.drain(..) {
            let _ = handle.join();
        }
    }
}

/// Best-effort extraction of a panic payload's message.
fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Pops a ready launch for worker `id`: its own deque from the back (LIFO,
/// cache-warm continuations) or a sibling's from the front (FIFO steal).
fn pop_ready(state: &mut SchedState, id: usize) -> Option<u64> {
    if let Some(task) = state.queues[id].pop_back() {
        return Some(task);
    }
    let n = state.queues.len();
    for k in 1..n {
        if let Some(task) = state.queues[(id + k) % n].pop_front() {
            return Some(task);
        }
    }
    None
}

fn worker_loop(id: usize, shared: &Shared) {
    let mut state = shared.state.lock().unwrap();
    loop {
        if let Some(task) = pop_ready(&mut state, id) {
            let (work, fail_with) = {
                let node = state.tasks.get_mut(&task).expect("ready task present");
                (
                    node.work.take().expect("ready task must have unexecuted work"),
                    node.fail_with.take(),
                )
            };
            let result = match fail_with {
                // Skipped: an upstream launch in its cone failed. Launches
                // outside the cone run normally (containment).
                Some(e) => Err(e),
                None => {
                    // Independent scheduler audit (debug + DIFFUSE_VERIFY):
                    // this task is about to touch real data, so every
                    // conflicting predecessor must be ordered and complete.
                    if let Some(hb) = state.hb.as_ref() {
                        hb.check_start(task);
                    }
                    drop(state);
                    // The heavy part runs without any scheduler lock held.
                    // Panics are caught so a dying launch cannot leak
                    // `pending` and deadlock every later flush; they surface
                    // as RuntimeError::Panicked.
                    let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                        run_functional(
                            work.kernel.as_ref(),
                            &work.scalars,
                            &work.local_buffer_lens,
                            &work.accesses,
                            work.failed_attempts,
                        )
                    }))
                    .unwrap_or_else(|payload| {
                        Err(RuntimeError::Panicked(panic_message(&payload)))
                    });
                    state = shared.state.lock().unwrap();
                    r
                }
            };
            let node = state.tasks.remove(&task).expect("completed task present");
            if let Some(hb) = state.hb.as_mut() {
                hb.complete(task);
            }
            let failed_name = if let Err(e) = result {
                state.failed.insert(task, node.name.clone());
                state.failures.push((
                    task,
                    LaunchFailure {
                        launch: node.name.clone(),
                        error: e,
                    },
                ));
                Some(node.name.clone())
            } else {
                None
            };
            let mut freed = 0;
            for dep in node.dependents {
                let dependent = state
                    .tasks
                    .get_mut(&dep)
                    .expect("dependent of running task present");
                if let Some(upstream) = &failed_name {
                    if dependent.fail_with.is_none() {
                        dependent.fail_with = Some(RuntimeError::Poisoned {
                            launch: dependent.name.clone(),
                            upstream: upstream.clone(),
                        });
                    }
                }
                dependent.unmet -= 1;
                if dependent.unmet == 0 {
                    state.queues[id].push_back(dep);
                    freed += 1;
                }
            }
            // This worker immediately takes one freed launch itself; wake
            // siblings for the rest so they can steal.
            if freed > 1 {
                shared.work_cv.notify_all();
            }
            state.pending -= 1;
            // Wakes both flushers (waiting for 0) and backpressured
            // submitters (waiting to drop below the bound).
            shared.done_cv.notify_all();
        } else if state.shutdown {
            return;
        } else {
            state = shared.work_cv.wait(state).unwrap();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::region::Region;
    use kernel::{compile_interp, BufferId, BufferRole, KernelModule, LoopBuilder};

    fn handle(id: u64, n: u64, value: f64) -> RegionHandle {
        let h = RegionHandle::new(Region::new(RegionId(id), vec![n], "r", true));
        h.fill(value);
        h
    }

    /// out[i] = in[i] * factor
    fn scale_work(src: &RegionHandle, dst: &RegionHandle, n: u64, factor: f64) -> FunctionalWork {
        let mut module = KernelModule::new(2);
        module.set_role(BufferId(1), BufferRole::Output);
        let mut lb = LoopBuilder::new("scale", BufferId(0));
        let x = lb.load(BufferId(0));
        let c = lb.constant(factor);
        let v = lb.mul(x, c);
        lb.store(BufferId(1), v);
        module.push_loop(lb.finish());
        let rect = Rect::new(vec![0], vec![n as i64]);
        FunctionalWork {
            name: "scale".into(),
            kernel: compile_interp(module),
            scalars: vec![],
            accesses: vec![
                BufferAccess {
                    region: RegionId(100),
                    handle: src.clone(),
                    rect: rect.clone(),
                    privilege: Privilege::Read,
                },
                BufferAccess {
                    region: RegionId(101),
                    handle: dst.clone(),
                    rect,
                    privilege: Privilege::Write,
                },
            ],
            local_buffer_lens: vec![],
            failed_attempts: 0,
        }
    }

    #[test]
    fn serial_executor_runs_inline() {
        let (a, b) = (handle(0, 16, 2.0), handle(1, 16, 0.0));
        let mut ex = SerialExecutor::new();
        let w = scale_work(&a, &b, 16, 3.0);
        ex.submit(w.as_request());
        // Inline execution: visible even before flush.
        assert_eq!(b.data().unwrap(), vec![6.0; 16]);
        ex.flush().unwrap();
    }

    #[test]
    fn work_stealing_executor_completes_a_chain() {
        let (a, b, c) = (handle(0, 64, 1.0), handle(1, 64, 0.0), handle(2, 64, 0.0));
        let mut ex = WorkStealingExecutor::new(4);
        assert_eq!(ex.workers(), 4);
        let mut w1 = scale_work(&a, &b, 64, 2.0);
        w1.accesses[0].region = RegionId(0);
        w1.accesses[1].region = RegionId(1);
        let mut w2 = scale_work(&b, &c, 64, 5.0);
        w2.accesses[0].region = RegionId(1);
        w2.accesses[1].region = RegionId(2);
        ex.submit(w1.as_request());
        ex.submit(w2.as_request()); // RAW on region 1: must see b = 2.0
        ex.flush().unwrap();
        assert_eq!(c.data().unwrap(), vec![10.0; 64]);
    }

    #[test]
    fn work_stealing_executor_overlaps_independent_launches() {
        let n = 256u64;
        let sources: Vec<RegionHandle> = (0..8).map(|i| handle(i, n, i as f64)).collect();
        let sinks: Vec<RegionHandle> = (8..16).map(|i| handle(i, n, 0.0)).collect();
        let mut ex = WorkStealingExecutor::new(4);
        for (i, (src, dst)) in sources.iter().zip(&sinks).enumerate() {
            let mut w = scale_work(src, dst, n, 2.0);
            w.accesses[0].region = RegionId(i as u64);
            w.accesses[1].region = RegionId(8 + i as u64);
            ex.submit(w.as_request());
        }
        ex.flush().unwrap();
        for (i, dst) in sinks.iter().enumerate() {
            assert_eq!(dst.data().unwrap(), vec![2.0 * i as f64; n as usize]);
        }
    }

    #[test]
    fn errors_defer_to_flush_and_poison_the_batch() {
        let (a, b) = (handle(0, 16, 1.0), handle(1, 16, 0.0));
        for mut ex in [
            Box::new(SerialExecutor::new()) as Box<dyn Executor>,
            Box::new(WorkStealingExecutor::new(2)) as Box<dyn Executor>,
        ] {
            // A module reading scalar parameter 0 without providing scalars:
            // fails with MissingParam at execution time.
            let mut bad = scale_work(&a, &b, 16, 1.0);
            let mut lb = LoopBuilder::new("bad", BufferId(0));
            let x = lb.load(BufferId(0));
            let p = lb.param(0);
            let v = lb.mul(x, p);
            lb.store(BufferId(1), v);
            let mut module = KernelModule::new(2);
            module.set_role(BufferId(1), BufferRole::Output);
            module.push_loop(lb.finish());
            bad.kernel = compile_interp(module);
            ex.submit(bad.as_request());
            // Writes the same region as `bad` (WAW), so it is ordered after it
            // under both executors and must be skipped once the batch poisons.
            let good = scale_work(&a, &b, 16, 7.0);
            ex.submit(good.as_request());
            assert!(ex.flush().is_err(), "{:?} must defer the error", ex.kind());
            // The batch was poisoned: the good launch was skipped.
            assert_eq!(b.data().unwrap(), vec![0.0; 16]);
            // The next batch starts clean.
            let retry = scale_work(&a, &b, 16, 7.0);
            ex.submit(retry.as_request());
            ex.flush().unwrap();
            assert_eq!(b.data().unwrap(), vec![7.0; 16]);
            b.fill(0.0);
        }
    }

    #[test]
    fn panicking_launch_surfaces_as_error_instead_of_deadlocking() {
        let (a, b) = (handle(0, 16, 1.0), handle(1, 16, 0.0));
        for mut ex in [
            Box::new(SerialExecutor::new()) as Box<dyn Executor>,
            Box::new(WorkStealingExecutor::new(2)) as Box<dyn Executor>,
        ] {
            // An access rect that lies outside the region: read_rect panics.
            let mut bad = scale_work(&a, &b, 16, 1.0);
            bad.accesses[0].rect = Rect::new(vec![0], vec![64]);
            ex.submit(bad.as_request());
            // Without the worker panic guard this flush would hang forever.
            match ex.flush() {
                Err(RuntimeError::Panicked(_)) => {}
                other => panic!("expected Panicked, got {other:?}"),
            }
            // The executor stays usable for the next batch.
            let retry = scale_work(&a, &b, 16, 4.0);
            ex.submit(retry.as_request());
            ex.flush().unwrap();
            assert_eq!(b.data().unwrap(), vec![4.0; 16]);
            b.fill(0.0);
        }
    }

    #[test]
    fn failures_poison_only_the_dependence_cone() {
        // bad writes region 1; its dependent (reads 1, writes 2) must be
        // skipped; an unordered launch (0 -> 3) must still complete.
        let (a, b, c, d) = (
            handle(0, 16, 1.0),
            handle(1, 16, 0.0),
            handle(2, 16, 0.0),
            handle(3, 16, 0.0),
        );
        for mut ex in [
            Box::new(SerialExecutor::new()) as Box<dyn Executor>,
            Box::new(WorkStealingExecutor::new(2)) as Box<dyn Executor>,
        ] {
            let mut bad = scale_work(&a, &b, 16, 1.0);
            bad.name = "bad".into();
            bad.accesses[0].region = RegionId(0);
            bad.accesses[1].region = RegionId(1);
            bad.accesses[0].rect = Rect::new(vec![0], vec![64]); // panics
            ex.submit(bad.as_request());
            let mut cone = scale_work(&b, &c, 16, 2.0);
            cone.name = "cone".into();
            cone.accesses[0].region = RegionId(1);
            cone.accesses[1].region = RegionId(2);
            ex.submit(cone.as_request());
            let mut free = scale_work(&a, &d, 16, 5.0);
            free.name = "free".into();
            free.accesses[0].region = RegionId(0);
            free.accesses[1].region = RegionId(3);
            ex.submit(free.as_request());
            // The flush error is the cone root's, not a Poisoned record.
            match ex.flush() {
                Err(RuntimeError::Panicked(_)) => {}
                other => panic!("{:?}: expected Panicked, got {other:?}", ex.kind()),
            }
            // Containment: the unordered launch completed.
            assert_eq!(d.data().unwrap(), vec![5.0; 16]);
            // The cone was skipped.
            assert_eq!(c.data().unwrap(), vec![0.0; 16]);
            // Structured records: root first, then its poisoned dependent.
            let failures = ex.drain_failures();
            assert_eq!(failures.len(), 2, "{:?}", ex.kind());
            assert_eq!(failures[0].launch, "bad");
            assert!(matches!(failures[0].error, RuntimeError::Panicked(_)));
            assert_eq!(failures[1].launch, "cone");
            match &failures[1].error {
                RuntimeError::Poisoned { launch, upstream } => {
                    assert_eq!(launch, "cone");
                    assert_eq!(upstream, "bad");
                }
                other => panic!("expected Poisoned, got {other:?}"),
            }
            // A fresh batch drains nothing.
            assert!(ex.drain_failures().is_empty());
            d.fill(0.0);
        }
    }

    #[test]
    fn poison_skips_downstream_and_records_failures() {
        let (a, b, c) = (handle(0, 16, 3.0), handle(1, 16, 0.0), handle(2, 16, 0.0));
        for mut ex in [
            Box::new(SerialExecutor::new()) as Box<dyn Executor>,
            Box::new(WorkStealingExecutor::new(2)) as Box<dyn Executor>,
        ] {
            // Runtime-abandoned launch: would have written region 1.
            let summaries = [
                AccessSummary {
                    region: RegionId(0),
                    reads: true,
                    writes: false,
                },
                AccessSummary {
                    region: RegionId(1),
                    reads: false,
                    writes: true,
                },
            ];
            ex.poison(
                "abandoned",
                &summaries,
                RuntimeError::Panicked("device fault".into()),
            );
            // Downstream of the poisoned write: must be skipped.
            let mut cone = scale_work(&b, &c, 16, 2.0);
            cone.name = "cone".into();
            cone.accesses[0].region = RegionId(1);
            cone.accesses[1].region = RegionId(2);
            ex.submit(cone.as_request());
            // Independent: must run.
            let mut free = scale_work(&a, &b, 16, 4.0);
            free.name = "free".into();
            free.accesses[0].region = RegionId(0);
            free.accesses[1].region = RegionId(5);
            free.accesses[1].handle = handle(5, 16, 0.0);
            let sink = free.accesses[1].handle.clone();
            ex.submit(free.as_request());
            assert!(ex.flush().is_err());
            assert_eq!(sink.data().unwrap(), vec![12.0; 16]);
            assert_eq!(c.data().unwrap(), vec![0.0; 16]);
            let failures = ex.drain_failures();
            assert_eq!(failures.len(), 2, "{:?}", ex.kind());
            assert_eq!(failures[0].launch, "abandoned");
            assert_eq!(failures[1].launch, "cone");
        }
    }

    #[test]
    fn discarded_attempts_commit_nothing() {
        // An accumulating kernel (dst += src) is NOT idempotent, so any
        // killed attempt that failed to roll back would inflate the result.
        // With failed_attempts > 0 the committing result must be bitwise
        // identical to a clean run.
        let (a, b) = (handle(0, 32, 1.5), handle(1, 32, 9.0));
        let mut module = KernelModule::new(2);
        module.set_role(BufferId(1), BufferRole::Output);
        let mut lb = LoopBuilder::new("acc", BufferId(0));
        let x = lb.load(BufferId(0));
        let y = lb.load(BufferId(1));
        let v = lb.add(x, y);
        lb.store(BufferId(1), v);
        module.push_loop(lb.finish());
        let rect = Rect::new(vec![0], vec![32]);
        let work = FunctionalWork {
            name: "acc".into(),
            kernel: compile_interp(module),
            scalars: vec![],
            accesses: vec![
                BufferAccess {
                    region: RegionId(100),
                    handle: a.clone(),
                    rect: rect.clone(),
                    privilege: Privilege::Read,
                },
                BufferAccess {
                    region: RegionId(101),
                    handle: b.clone(),
                    rect,
                    privilege: Privilege::ReadWrite,
                },
            ],
            local_buffer_lens: vec![],
            failed_attempts: 3,
        };
        let mut ex = SerialExecutor::new();
        ex.submit(work.as_request());
        ex.flush().unwrap();
        assert!(ex.drain_failures().is_empty());
        // One committed accumulation only: 9.0 + 1.5, not 9.0 + 4 * 1.5.
        assert_eq!(b.data().unwrap(), vec![10.5; 32]);
        // Source (read-only) untouched by the replayed attempts.
        assert_eq!(a.data().unwrap(), vec![1.5; 32]);
    }

    #[test]
    fn flush_on_empty_executor_is_ok() {
        let mut ex = WorkStealingExecutor::for_gpus(4);
        ex.flush().unwrap();
        ex.flush().unwrap();
    }

    #[test]
    fn worker_count_resolution() {
        assert_eq!(ExecutorKind::Serial.worker_count(8), 1);
        assert_eq!(
            ExecutorKind::WorkStealing { workers: Some(3) }.worker_count(8),
            3
        );
        let auto = ExecutorKind::WorkStealing { workers: None }.worker_count(8);
        assert!((1..=8).contains(&auto));
    }
}
