//! A Legion-style distributed task runtime over the simulated machine.
//!
//! The paper implements Diffuse as a middle layer between task-based libraries
//! and the Legion runtime system. Legion is not available in Rust, so this
//! crate provides the substrate Diffuse lowers to: logical regions holding
//! distributed array data, index-task launches with region requirements,
//! a scale-aware coherence analysis that determines the communication required
//! when data is accessed through a different partition than it was produced
//! with, per-task runtime overheads, and an execution engine that both
//! advances the simulated clock (performance) and runs the kernels on real
//! buffers (functional correctness).
//!
//! The key contrast with the IR crate is deliberate: partitions here are
//! evaluated point-by-point (the analysis cost scales with the machine size),
//! which is exactly the scale-aware representation the paper's scale-free IR
//! avoids for its fusion analysis (Section 4.4).
//!
//! Functional kernel work is scheduled by an [`Executor`]: the default
//! [`SerialExecutor`] runs launches inline, while the
//! [`WorkStealingExecutor`] (one worker per simulated GPU) overlaps
//! independent launches and orders conflicting ones through their region
//! read/write sets, mirroring how the paper's runtime overlaps task launches
//! across GPUs. Launches carry *compiled* kernels (`Arc<dyn CompiledKernel>`
//! artifacts produced by a [`kernel::KernelBackend`] — see
//! [`Runtime::compile`] and `docs/BACKENDS.md`), so the executor layer is
//! backend-agnostic. See `docs/RUNTIME.md` for the architecture.
//!
//! # Example
//!
//! ```
//! use machine::MachineConfig;
//! use runtime::{Runtime, RuntimeConfig, TaskLaunch, RegionRequirement, OverheadClass};
//! use ir::{Domain, Partition, Privilege};
//! use kernel::{KernelModule, LoopBuilder, BufferId, BufferRole};
//!
//! let mut rt = Runtime::new(RuntimeConfig::functional(MachineConfig::single_node(4)));
//! let a = rt.allocate_region(vec![16], "a");
//! let b = rt.allocate_region(vec![16], "b");
//! rt.fill(a, 2.0).unwrap();
//!
//! // b[i] = a[i] * 3
//! let mut module = KernelModule::new(2);
//! module.set_role(BufferId(1), BufferRole::Output);
//! let mut lb = LoopBuilder::new("scale", BufferId(0));
//! let x = lb.load(BufferId(0));
//! let c = lb.constant(3.0);
//! let v = lb.mul(x, c);
//! lb.store(BufferId(1), v);
//! module.push_loop(lb.finish());
//!
//! let launch = TaskLaunch {
//!     name: "scale".into(),
//!     launch_domain: Domain::linear(4),
//!     requirements: vec![
//!         RegionRequirement::new(a, Partition::block(vec![4]), Privilege::Read),
//!         RegionRequirement::new(b, Partition::block(vec![4]), Privilege::Write),
//!     ],
//!     kernel: rt.compile(&module).unwrap(),
//!     scalars: vec![],
//!     local_buffer_lens: vec![],
//!     overhead: OverheadClass::TaskRuntime,
//! };
//! rt.execute(&launch).unwrap();
//! assert_eq!(rt.region_data(b).unwrap()[0], 6.0);
//! assert!(rt.elapsed() > 0.0);
//! ```

pub mod deps;
pub mod executor;
pub mod faults;
pub mod launch;
pub mod profile;
pub mod region;
#[allow(clippy::module_inception)]
pub mod runtime;

pub use deps::{AccessSummary, DepTracker, HbChecker};
pub use executor::{
    BufferAccess, Executor, ExecutorKind, FunctionalWork, LaunchFailure, SerialExecutor,
    WorkRequest, WorkStealingExecutor,
};
pub use faults::{FaultEvent, FaultPlan, FaultSite, FaultStats, RecoveryPolicy};
pub use launch::{OverheadClass, RegionRequirement, TaskLaunch, TaskLaunchBuilder};
pub use profile::Profile;
pub use region::{Region, RegionHandle, RegionId};
pub use runtime::{Runtime, RuntimeConfig, RuntimeError};
