//! Deterministic fault injection and recovery policies (`diffuse-chaos`).
//!
//! A [`FaultPlan`] is a pure function from `(site, key, attempt)` to a
//! fault/no-fault decision: no RNG state is consumed, so a given seed and
//! rate produce the *same* fault schedule under every executor, every kernel
//! backend and every window permutation. The key a caller passes is derived
//! from launch-intrinsic content ([`crate::TaskLaunch::fingerprint`] mixed
//! with a per-fingerprint occurrence counter), never from scheduling order —
//! see `docs/RESILIENCE.md` for the determinism argument.
//!
//! Three fault sites exist ([`FaultSite`]):
//!
//! * **Device** — a simulated GPU dies mid-launch. Recovered by retrying with
//!   exponential backoff priced on the simulated clock; repeated failure
//!   marks the GPU unhealthy and migrates its work.
//! * **Compile** — a kernel backend fails to compile a fused module.
//!   Recovered by degrading along [`kernel::BackendKind::fallback`]
//!   (simd → closure → interp; the interpreter never fails).
//! * **RegionRead** — a transient failure reading a region's data (a dropped
//!   fetch). Recovered by re-issuing the read after a priced backoff.
//!
//! All decisions and all recovery pricing happen eagerly in the accounting
//! half of [`crate::Runtime::execute`], so simulated time stays
//! executor-invariant; only the *discarded attempts* of a device fault are
//! replayed on the functional side (with rollback, so a killed attempt
//! commits nothing).

use std::sync::Once;

/// Where a simulated fault strikes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FaultSite {
    /// A simulated GPU died while running a launch's kernel work.
    Device,
    /// A kernel backend failed to compile a module.
    Compile,
    /// A transient failure reading a region (dropped fetch / lost message).
    RegionRead,
}

impl FaultSite {
    /// A fixed per-site salt so the three decision streams are independent.
    fn salt(self) -> u64 {
        match self {
            FaultSite::Device => 0x4445_5649_4345_0001,
            FaultSite::Compile => 0x434f_4d50_494c_4502,
            FaultSite::RegionRead => 0x5245_4144_0000_0003,
        }
    }
}

impl std::fmt::Display for FaultSite {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FaultSite::Device => write!(f, "device failure"),
            FaultSite::Compile => write!(f, "kernel compile failure"),
            FaultSite::RegionRead => write!(f, "transient region-read failure"),
        }
    }
}

/// SplitMix64 finalizer: a well-mixed bijection on `u64`.
fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Mixes two words into one well-distributed key (used to fold occurrence
/// counters and per-requirement indices into a launch fingerprint).
pub fn mix(a: u64, b: u64) -> u64 {
    splitmix64(a ^ splitmix64(b))
}

/// A seeded, deterministic fault schedule: every `(site, key, attempt)`
/// triple independently faults with probability `rate`.
///
/// # Example
///
/// ```
/// use runtime::{FaultPlan, FaultSite};
///
/// let plan = FaultPlan::new(42, 0.25);
/// // Decisions are pure: the same triple always answers the same way.
/// let d = plan.should_fault(FaultSite::Device, 7, 0);
/// assert_eq!(d, plan.should_fault(FaultSite::Device, 7, 0));
/// // rate 0 never faults, rate 1 always does.
/// assert!(!FaultPlan::new(42, 0.0).should_fault(FaultSite::Device, 7, 0));
/// assert!(FaultPlan::new(42, 1.0).should_fault(FaultSite::Device, 7, 0));
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultPlan {
    seed: u64,
    rate: f64,
}

impl FaultPlan {
    /// Creates a plan from a seed and a per-decision fault probability
    /// (clamped to `[0, 1]`).
    pub fn new(seed: u64, rate: f64) -> Self {
        FaultPlan {
            seed,
            rate: rate.clamp(0.0, 1.0),
        }
    }

    /// The plan's seed.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// The per-decision fault probability.
    pub fn rate(&self) -> f64 {
        self.rate
    }

    /// Reads a plan from the `DIFFUSE_FAULTS` environment variable.
    ///
    /// Grammar: `DIFFUSE_FAULTS=<seed>:<rate>` (e.g. `42:0.05`). Unset,
    /// empty, or `off` mean no fault injection. A malformed value warns once
    /// and disables injection — silently injecting a different schedule than
    /// the one asked for would invalidate any chaos comparison.
    pub fn from_env() -> Option<Self> {
        let raw = std::env::var("DIFFUSE_FAULTS").ok()?;
        if raw.is_empty() || raw == "off" || raw == "0" || raw == "none" {
            return None;
        }
        let parsed = raw.split_once(':').and_then(|(seed, rate)| {
            Some(FaultPlan::new(
                seed.trim().parse().ok()?,
                rate.trim().parse().ok()?,
            ))
        });
        if parsed.is_none() {
            static WARNED: Once = Once::new();
            let raw = raw.clone();
            WARNED.call_once(|| {
                eprintln!(
                    "warning: unrecognized DIFFUSE_FAULTS value {raw:?} \
                     (expected \"<seed>:<rate>\", e.g. \"42:0.05\", or \"off\"); \
                     fault injection disabled"
                );
            });
        }
        parsed
    }

    /// Whether the fault at `(site, key, attempt)` fires. Pure — no state is
    /// consumed, so schedules replay identically under any execution order.
    pub fn should_fault(&self, site: FaultSite, key: u64, attempt: u32) -> bool {
        if self.rate <= 0.0 {
            return false;
        }
        if self.rate >= 1.0 {
            return true;
        }
        let h = splitmix64(mix(self.seed ^ site.salt(), key) ^ u64::from(attempt));
        // Top 53 bits → uniform in [0, 1).
        ((h >> 11) as f64) * (1.0 / (1u64 << 53) as f64) < self.rate
    }
}

/// How the runtime recovers from injected faults.
///
/// With recovery `enabled` (the default), a faulted launch retries with
/// exponential backoff priced on the simulated clock; once `max_retries`
/// attempts are exhausted, the target GPU takes a strike and the launch
/// migrates to the remaining healthy devices (so no launch is ever lost).
/// With recovery disabled, the first fault fails the launch with a
/// structured [`crate::RuntimeError::Faulted`], poisoning exactly its
/// dependence cone.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RecoveryPolicy {
    /// Whether faulted launches are retried/degraded instead of failed.
    pub enabled: bool,
    /// Retry attempts per launch before escalating (device) or giving up to
    /// a replica read (region reads).
    pub max_retries: u32,
    /// Simulated seconds of the first backoff pause; attempt `k` waits
    /// `backoff_base * 2^k`.
    pub backoff_base: f64,
    /// Exhausted retry sequences (strikes) a GPU survives before it is
    /// marked unhealthy and its share of work migrates.
    pub unhealthy_after: u32,
}

impl Default for RecoveryPolicy {
    fn default() -> Self {
        RecoveryPolicy {
            enabled: true,
            max_retries: 3,
            backoff_base: 1e-5,
            unhealthy_after: 2,
        }
    }
}

impl RecoveryPolicy {
    /// A policy that fails launches on the first fault (no retries, no
    /// degradation) — the containment-testing mode.
    pub fn disabled() -> Self {
        RecoveryPolicy {
            enabled: false,
            ..RecoveryPolicy::default()
        }
    }

    /// Overrides the retry budget.
    pub fn with_max_retries(mut self, max_retries: u32) -> Self {
        self.max_retries = max_retries;
        self
    }

    /// Overrides the base backoff pause (simulated seconds).
    pub fn with_backoff_base(mut self, backoff_base: f64) -> Self {
        self.backoff_base = backoff_base;
        self
    }

    /// Overrides the strikes-to-unhealthy threshold.
    pub fn with_unhealthy_after(mut self, unhealthy_after: u32) -> Self {
        self.unhealthy_after = unhealthy_after.max(1);
        self
    }

    /// The simulated backoff pause before retry `attempt + 1`:
    /// `backoff_base * 2^attempt`.
    pub fn backoff(&self, attempt: u32) -> f64 {
        self.backoff_base * f64::powi(2.0, attempt.min(62) as i32)
    }

    /// The simulated cost of restarting every device after the last healthy
    /// GPU is lost (the parallel→serial last resort): one backoff step past
    /// the retry budget.
    pub fn restart_penalty(&self) -> f64 {
        self.backoff(self.max_retries + 1)
    }
}

/// Counters attributing fault-injection and recovery activity, surfaced
/// through `ExecutionStats` at the Diffuse layer.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct FaultStats {
    /// Faults the plan injected (every site, every attempt).
    pub faults_injected: u64,
    /// Priced retry attempts (device and region-read backoffs).
    pub retries: u64,
    /// Launches that completed degraded: migrated off a struck GPU, or
    /// compiled by a fallback backend after a compile fault.
    pub degraded_launches: u64,
    /// Launches whose effects were lost: faulted with recovery disabled,
    /// plus every launch skipped in their dependence cones.
    pub abandoned_launches: u64,
    /// Simulated seconds spent in recovery (backoff pauses, device
    /// restarts) — charged on the clock, so recovery cost is measured.
    pub recovery_sim_time: f64,
}

impl FaultStats {
    /// Accumulates `other` into `self`.
    pub fn merge(&mut self, other: &FaultStats) {
        self.faults_injected += other.faults_injected;
        self.retries += other.retries;
        self.degraded_launches += other.degraded_launches;
        self.abandoned_launches += other.abandoned_launches;
        self.recovery_sim_time += other.recovery_sim_time;
    }
}

/// One injected fault that failed a launch (recovery disabled or
/// exhausted) — the payload of [`crate::RuntimeError::Faulted`].
#[derive(Debug, Clone, PartialEq)]
pub struct FaultEvent {
    /// The launch the fault killed.
    pub launch: String,
    /// Which site faulted.
    pub site: FaultSite,
    /// Attempts made (1 = failed on first try, no retries granted).
    pub attempts: u32,
}

impl std::fmt::Display for FaultEvent {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "injected {} killed launch `{}` after {} attempt(s)",
            self.site, self.launch, self.attempts
        )
    }
}

impl std::error::Error for FaultEvent {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn decisions_are_pure_and_rate_bounded() {
        let plan = FaultPlan::new(7, 0.3);
        let mut fired = 0u32;
        for key in 0..2000u64 {
            let a = plan.should_fault(FaultSite::Device, key, 0);
            let b = plan.should_fault(FaultSite::Device, key, 0);
            assert_eq!(a, b);
            fired += u32::from(a);
        }
        // 30% ± a loose statistical margin over 2000 samples.
        assert!((400..=800).contains(&fired), "fired {fired}/2000");
    }

    #[test]
    fn sites_and_attempts_are_independent_streams() {
        let plan = FaultPlan::new(1, 0.5);
        let mut diff_site = false;
        let mut diff_attempt = false;
        for key in 0..64u64 {
            diff_site |= plan.should_fault(FaultSite::Device, key, 0)
                != plan.should_fault(FaultSite::Compile, key, 0);
            diff_attempt |= plan.should_fault(FaultSite::Device, key, 0)
                != plan.should_fault(FaultSite::Device, key, 1);
        }
        assert!(diff_site && diff_attempt);
    }

    #[test]
    fn rate_is_clamped() {
        assert_eq!(FaultPlan::new(0, 7.0).rate(), 1.0);
        assert_eq!(FaultPlan::new(0, -1.0).rate(), 0.0);
    }

    #[test]
    fn backoff_doubles_per_attempt() {
        let p = RecoveryPolicy::default().with_backoff_base(2.0);
        assert_eq!(p.backoff(0), 2.0);
        assert_eq!(p.backoff(1), 4.0);
        assert_eq!(p.backoff(2), 8.0);
        assert_eq!(p.restart_penalty(), p.backoff(p.max_retries + 1));
    }

    #[test]
    fn fault_stats_merge_adds_counters() {
        let mut a = FaultStats {
            faults_injected: 1,
            retries: 2,
            degraded_launches: 3,
            abandoned_launches: 4,
            recovery_sim_time: 0.5,
        };
        a.merge(&a.clone());
        assert_eq!(a.faults_injected, 2);
        assert_eq!(a.retries, 4);
        assert_eq!(a.degraded_launches, 6);
        assert_eq!(a.abandoned_launches, 8);
        assert_eq!(a.recovery_sim_time, 1.0);
    }
}
