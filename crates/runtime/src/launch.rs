//! Task launches: the runtime's unit of work.

use ir::{Domain, Partition, Privilege};
use kernel::KernelModule;

use crate::region::RegionId;

/// Which overhead class an operation pays.
///
/// Dynamic task-based runtimes pay per-task dependence-analysis and mapping
/// costs (Legion's minimum effective task granularity); an explicitly parallel
/// MPI library pays only a small per-call overhead. The PETSc-equivalent
/// baseline uses [`OverheadClass::Mpi`].
///
/// # Example
///
/// ```
/// use runtime::OverheadClass;
///
/// assert_eq!(OverheadClass::default(), OverheadClass::TaskRuntime);
/// assert_ne!(OverheadClass::Mpi, OverheadClass::None);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum OverheadClass {
    /// Dynamic task runtime overhead (dependence analysis, mapping).
    #[default]
    TaskRuntime,
    /// Explicitly parallel library overhead (an MPI call).
    Mpi,
    /// No per-operation overhead (used by ablations).
    None,
}

/// One region requirement of a task launch: which region is accessed, through
/// which partition, and with what privilege.
///
/// # Example
///
/// ```
/// use ir::{Partition, Privilege};
/// use runtime::{RegionId, RegionRequirement};
///
/// let req = RegionRequirement::new(RegionId(0), Partition::block(vec![8]), Privilege::Read);
/// assert!(req.privilege.reads() && !req.privilege.writes());
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct RegionRequirement {
    /// The region accessed.
    pub region: RegionId,
    /// The partition through which each point task accesses the region.
    pub partition: Partition,
    /// The access privilege.
    pub privilege: Privilege,
}

impl RegionRequirement {
    /// Creates a region requirement.
    pub fn new(region: RegionId, partition: Partition, privilege: Privilege) -> Self {
        RegionRequirement {
            region,
            partition,
            privilege,
        }
    }
}

/// An index-task launch: a group of point tasks over a launch domain, with one
/// region requirement per kernel buffer argument.
///
/// Buffer `i` of `module` corresponds to `requirements[i]`; buffers beyond the
/// requirement count are task-local temporaries whose per-point element counts
/// are given by `local_buffer_lens`.
///
/// # Example
///
/// ```
/// use ir::{Domain, Partition, Privilege};
/// use kernel::KernelModule;
/// use runtime::{OverheadClass, RegionId, RegionRequirement, TaskLaunch};
///
/// let launch = TaskLaunch {
///     name: "demo".into(),
///     launch_domain: Domain::linear(4),
///     requirements: vec![RegionRequirement::new(
///         RegionId(0),
///         Partition::block(vec![8]),
///         Privilege::Read,
///     )],
///     module: KernelModule::new(2),
///     scalars: vec![1.5],
///     local_buffer_lens: vec![32],
///     overhead: OverheadClass::TaskRuntime,
/// };
/// assert_eq!(launch.num_buffers(), 2); // one requirement + one local
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct TaskLaunch {
    /// Human-readable name (used in profiles).
    pub name: String,
    /// The launch domain: one point per processor.
    pub launch_domain: Domain,
    /// Region requirements in kernel-buffer order.
    pub requirements: Vec<RegionRequirement>,
    /// The kernel module to execute.
    pub module: KernelModule,
    /// Scalar kernel parameters.
    pub scalars: Vec<f64>,
    /// Per-point element counts of the module's task-local buffers (ids
    /// `requirements.len()..`).
    pub local_buffer_lens: Vec<usize>,
    /// Overhead class of this operation.
    pub overhead: OverheadClass,
}

impl TaskLaunch {
    /// Total number of kernel buffers (requirements plus locals).
    pub fn num_buffers(&self) -> usize {
        self.requirements.len() + self.local_buffer_lens.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn requirement_construction() {
        let r = RegionRequirement::new(RegionId(1), Partition::block(vec![4]), Privilege::Read);
        assert_eq!(r.region, RegionId(1));
        assert!(r.privilege.reads());
    }

    #[test]
    fn launch_buffer_count() {
        let launch = TaskLaunch {
            name: "t".into(),
            launch_domain: Domain::linear(2),
            requirements: vec![RegionRequirement::new(
                RegionId(0),
                Partition::Replicate,
                Privilege::Read,
            )],
            module: KernelModule::new(3),
            scalars: vec![],
            local_buffer_lens: vec![16, 16],
            overhead: OverheadClass::TaskRuntime,
        };
        assert_eq!(launch.num_buffers(), 3);
        assert_eq!(launch.overhead, OverheadClass::TaskRuntime);
    }

    #[test]
    fn default_overhead_is_task_runtime() {
        assert_eq!(OverheadClass::default(), OverheadClass::TaskRuntime);
    }
}
