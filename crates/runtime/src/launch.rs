//! Task launches: the runtime's unit of work.

use std::sync::Arc;

use ir::{Domain, PartitionId, Privilege};
use kernel::CompiledKernel;

use crate::region::RegionId;

/// Which overhead class an operation pays.
///
/// Dynamic task-based runtimes pay per-task dependence-analysis and mapping
/// costs (Legion's minimum effective task granularity); an explicitly parallel
/// MPI library pays only a small per-call overhead. The PETSc-equivalent
/// baseline uses [`OverheadClass::Mpi`].
///
/// # Example
///
/// ```
/// use runtime::OverheadClass;
///
/// assert_eq!(OverheadClass::default(), OverheadClass::TaskRuntime);
/// assert_ne!(OverheadClass::Mpi, OverheadClass::None);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum OverheadClass {
    /// Dynamic task runtime overhead (dependence analysis, mapping).
    #[default]
    TaskRuntime,
    /// Explicitly parallel library overhead (an MPI call).
    Mpi,
    /// No per-operation overhead (used by ablations).
    None,
}

/// One region requirement of a task launch: which region is accessed, through
/// which partition, and with what privilege.
///
/// The partition is carried as an interned [`PartitionId`] (see
/// [`ir::intern`]): requirements are cheap to copy and partition equality —
/// the runtime's validity check — is a register compare.
///
/// # Example
///
/// ```
/// use ir::{Partition, Privilege};
/// use runtime::{RegionId, RegionRequirement};
///
/// let req = RegionRequirement::new(RegionId(0), Partition::block(vec![8]), Privilege::Read);
/// assert!(req.privilege.reads() && !req.privilege.writes());
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RegionRequirement {
    /// The region accessed.
    pub region: RegionId,
    /// The partition through which each point task accesses the region
    /// (interned).
    pub partition: PartitionId,
    /// The access privilege.
    pub privilege: Privilege,
}

impl RegionRequirement {
    /// Creates a region requirement. Accepts either an owned
    /// [`ir::Partition`] (interned on the fly) or a [`PartitionId`].
    pub fn new(
        region: RegionId,
        partition: impl Into<PartitionId>,
        privilege: Privilege,
    ) -> Self {
        RegionRequirement {
            region,
            partition: partition.into(),
            privilege,
        }
    }
}

/// An index-task launch: a group of point tasks over a launch domain, with one
/// region requirement per kernel buffer argument.
///
/// The launch carries a **compiled** kernel (an `Arc<dyn CompiledKernel>`
/// produced by a [`kernel::KernelBackend`]), not a raw module: compilation
/// happens once — at the Diffuse layer on a memoization miss, or via
/// [`crate::Runtime::compile`] for hand-built launches — and the artifact is
/// shared by every executor worker that runs the launch. The runtime layer is
/// thereby backend-agnostic; which backend compiled the kernel changes host
/// wall-clock only, never simulated time or results.
///
/// Buffer `i` of the kernel's module corresponds to `requirements[i]`;
/// buffers beyond the requirement count are task-local temporaries whose
/// per-point element counts are given by `local_buffer_lens`.
///
/// # Example
///
/// ```
/// use ir::{Domain, Partition, Privilege};
/// use kernel::{compile_interp, KernelModule};
/// use runtime::{OverheadClass, RegionId, RegionRequirement, TaskLaunch};
///
/// let launch = TaskLaunch {
///     name: "demo".into(),
///     launch_domain: Domain::linear(4),
///     requirements: vec![RegionRequirement::new(
///         RegionId(0),
///         Partition::block(vec![8]),
///         Privilege::Read,
///     )],
///     kernel: compile_interp(KernelModule::new(2)),
///     scalars: vec![1.5],
///     local_buffer_lens: vec![32],
///     overhead: OverheadClass::TaskRuntime,
/// };
/// assert_eq!(launch.num_buffers(), 2); // one requirement + one local
/// ```
#[derive(Debug, Clone)]
pub struct TaskLaunch {
    /// Human-readable name (used in profiles).
    pub name: String,
    /// The launch domain: one point per processor.
    pub launch_domain: Domain,
    /// Region requirements in kernel-buffer order.
    pub requirements: Vec<RegionRequirement>,
    /// The compiled kernel to execute (shared, backend-produced artifact).
    pub kernel: Arc<dyn CompiledKernel>,
    /// Scalar kernel parameters.
    pub scalars: Vec<f64>,
    /// Per-point element counts of the module's task-local buffers (ids
    /// `requirements.len()..`).
    pub local_buffer_lens: Vec<usize>,
    /// Overhead class of this operation.
    pub overhead: OverheadClass,
}

impl TaskLaunch {
    /// Total number of kernel buffers (requirements plus locals).
    pub fn num_buffers(&self) -> usize {
        self.requirements.len() + self.local_buffer_lens.len()
    }

    /// A stable content fingerprint of the launch: name, launch-domain size,
    /// region requirements (region id + access direction) and scalars.
    ///
    /// Deliberately independent of the compiled kernel, the backend that
    /// produced it, and the executor, so fault schedules keyed on it
    /// (`docs/RESILIENCE.md`) reproduce identically across the whole
    /// executor × backend matrix and under window permutations. FNV-1a over
    /// the launch's content; collisions only blur which launches share a
    /// fault stream, never correctness.
    pub fn fingerprint(&self) -> u64 {
        const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
        const PRIME: u64 = 0x0000_0100_0000_01b3;
        fn put(h: &mut u64, bytes: &[u8]) {
            for &b in bytes {
                *h = (*h ^ u64::from(b)).wrapping_mul(PRIME);
            }
        }
        let mut h = OFFSET;
        put(&mut h, self.name.as_bytes());
        put(&mut h, &self.launch_domain.size().to_le_bytes());
        for req in &self.requirements {
            put(&mut h, &req.region.0.to_le_bytes());
            let dir = u8::from(req.privilege.reads())
                | u8::from(req.privilege.writes()) << 1
                | u8::from(req.privilege.reduces()) << 2;
            put(&mut h, &[dir]);
        }
        for s in &self.scalars {
            put(&mut h, &s.to_bits().to_le_bytes());
        }
        h
    }

    /// Starts a typed builder for a launch — the runtime-level counterpart of
    /// the Diffuse context's `LaunchBuilder`, used by callers that construct
    /// launches by hand (the PETSc baseline, executor tests).
    pub fn builder(name: impl Into<String>) -> TaskLaunchBuilder {
        TaskLaunchBuilder {
            name: name.into(),
            launch_domain: None,
            requirements: Vec::new(),
            kernel: None,
            scalars: Vec::new(),
            local_buffer_lens: Vec::new(),
            overhead: OverheadClass::default(),
        }
    }
}

/// Typed construction of a [`TaskLaunch`]:
///
/// ```
/// use ir::{Domain, Partition, Privilege};
/// use kernel::{compile_interp, KernelModule};
/// use runtime::{OverheadClass, RegionId, TaskLaunch};
///
/// let launch = TaskLaunch::builder("axpy")
///     .domain(Domain::linear(4))
///     .read(RegionId(0), Partition::block(vec![8]))
///     .read_write(RegionId(1), Partition::block(vec![8]))
///     .scalar(2.0)
///     .overhead(OverheadClass::Mpi)
///     .kernel(compile_interp(KernelModule::new(2)))
///     .build();
/// assert_eq!(launch.requirements.len(), 2);
/// assert_eq!(launch.scalars, vec![2.0]);
/// ```
#[derive(Debug)]
#[must_use = "a TaskLaunchBuilder does nothing until .build() is called"]
pub struct TaskLaunchBuilder {
    name: String,
    launch_domain: Option<Domain>,
    requirements: Vec<RegionRequirement>,
    kernel: Option<Arc<dyn CompiledKernel>>,
    scalars: Vec<f64>,
    local_buffer_lens: Vec<usize>,
    overhead: OverheadClass,
}

impl TaskLaunchBuilder {
    /// Sets the launch domain (required).
    pub fn domain(mut self, domain: Domain) -> Self {
        self.launch_domain = Some(domain);
        self
    }

    /// Appends a read requirement: `region` accessed through `partition`.
    pub fn read(self, region: RegionId, partition: impl Into<PartitionId>) -> Self {
        self.requirement(RegionRequirement::new(region, partition, Privilege::Read))
    }

    /// Appends a write requirement.
    pub fn write(self, region: RegionId, partition: impl Into<PartitionId>) -> Self {
        self.requirement(RegionRequirement::new(region, partition, Privilege::Write))
    }

    /// Appends a read-write requirement.
    pub fn read_write(self, region: RegionId, partition: impl Into<PartitionId>) -> Self {
        self.requirement(RegionRequirement::new(
            region,
            partition,
            Privilege::ReadWrite,
        ))
    }

    /// Appends a reduction requirement with the given operator.
    pub fn reduce(
        self,
        region: RegionId,
        partition: impl Into<PartitionId>,
        op: ir::ReductionOp,
    ) -> Self {
        self.requirement(RegionRequirement::new(
            region,
            partition,
            Privilege::Reduce(op),
        ))
    }

    /// Appends a pre-built requirement.
    pub fn requirement(mut self, requirement: RegionRequirement) -> Self {
        self.requirements.push(requirement);
        self
    }

    /// Sets the compiled kernel (required).
    pub fn kernel(mut self, kernel: Arc<dyn CompiledKernel>) -> Self {
        self.kernel = Some(kernel);
        self
    }

    /// Appends one scalar parameter.
    pub fn scalar(mut self, value: f64) -> Self {
        self.scalars.push(value);
        self
    }

    /// Appends several scalar parameters.
    pub fn scalars(mut self, values: &[f64]) -> Self {
        self.scalars.extend_from_slice(values);
        self
    }

    /// Appends a task-local buffer of `len` elements per point.
    pub fn local_buffer(mut self, len: usize) -> Self {
        self.local_buffer_lens.push(len);
        self
    }

    /// Sets the overhead class (defaults to [`OverheadClass::TaskRuntime`]).
    pub fn overhead(mut self, overhead: OverheadClass) -> Self {
        self.overhead = overhead;
        self
    }

    /// Finishes the launch.
    ///
    /// # Panics
    ///
    /// Panics if the domain or kernel was not set.
    pub fn build(self) -> TaskLaunch {
        TaskLaunch {
            name: self.name,
            launch_domain: self.launch_domain.expect("TaskLaunchBuilder requires a domain"),
            requirements: self.requirements,
            kernel: self.kernel.expect("TaskLaunchBuilder requires a kernel"),
            scalars: self.scalars,
            local_buffer_lens: self.local_buffer_lens,
            overhead: self.overhead,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ir::Partition;
    use kernel::{compile_interp, KernelModule};

    #[test]
    fn requirement_construction() {
        let r = RegionRequirement::new(RegionId(1), Partition::block(vec![4]), Privilege::Read);
        assert_eq!(r.region, RegionId(1));
        assert!(r.privilege.reads());
    }

    #[test]
    fn launch_buffer_count() {
        let launch = TaskLaunch {
            name: "t".into(),
            launch_domain: Domain::linear(2),
            requirements: vec![RegionRequirement::new(
                RegionId(0),
                Partition::Replicate,
                Privilege::Read,
            )],
            kernel: compile_interp(KernelModule::new(3)),
            scalars: vec![],
            local_buffer_lens: vec![16, 16],
            overhead: OverheadClass::TaskRuntime,
        };
        assert_eq!(launch.num_buffers(), 3);
        assert_eq!(launch.overhead, OverheadClass::TaskRuntime);
        assert_eq!(launch.kernel.backend_id(), "interp");
    }

    #[test]
    fn default_overhead_is_task_runtime() {
        assert_eq!(OverheadClass::default(), OverheadClass::TaskRuntime);
    }
}
