//! Criterion benchmarks of the kernel compilation pipeline and interpreter.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use kernel::{
    BufferId, BufferRole, Interpreter, KernelModule, LoopBuilder, Pipeline, PipelineConfig,
};

/// A chain of `n` elementwise adds through local temporaries, like Figure 8b
/// scaled up: buffer 0 and 1 are inputs, the last buffer is the output, the
/// rest are locals.
fn chain_module(n: u32) -> (KernelModule, Vec<usize>) {
    let mut module = KernelModule::new(n + 3);
    for i in 2..n + 2 {
        module.set_role(BufferId(i), BufferRole::Local);
    }
    module.set_role(BufferId(n + 2), BufferRole::Output);
    for i in 0..n + 1 {
        let (a, b, out) = if i == 0 {
            (BufferId(0), BufferId(1), BufferId(2))
        } else {
            (BufferId(i + 1), BufferId(1), BufferId(i + 2))
        };
        let mut lb = LoopBuilder::new("add", out);
        let (x, y) = (lb.load(a), lb.load(b));
        let s = lb.add(x, y);
        lb.store(out, s);
        module.push_loop(lb.finish());
    }
    let lens = vec![1024usize; n as usize + 3];
    (module, lens)
}

fn bench_pipeline(c: &mut Criterion) {
    let mut group = c.benchmark_group("kernel_pipeline");
    for n in [4u32, 16, 64] {
        let (module, lens) = chain_module(n);
        group.bench_with_input(BenchmarkId::new("loops", n), &(module, lens), |b, (m, l)| {
            b.iter(|| Pipeline::default().run(std::hint::black_box(m.clone()), l))
        });
    }
    group.finish();
}

fn bench_interpreter(c: &mut Criterion) {
    let (module, lens) = chain_module(16);
    let fused = Pipeline::default().run(module.clone(), &lens).module;
    let unfused = Pipeline::new(PipelineConfig::disabled()).run(module, &lens).module;
    let make_bufs = || -> Vec<Vec<f64>> { lens.iter().map(|&l| vec![1.0; l]).collect() };
    c.bench_function("interpret_fused_chain16", |b| {
        b.iter(|| {
            let mut bufs = make_bufs();
            Interpreter::new().execute(&fused, &mut bufs, &[]).unwrap();
            bufs
        })
    });
    c.bench_function("interpret_unfused_chain16", |b| {
        b.iter(|| {
            let mut bufs = make_bufs();
            Interpreter::new().execute(&unfused, &mut bufs, &[]).unwrap();
            bufs
        })
    });
}

criterion_group!(benches, bench_pipeline, bench_interpreter);
criterion_main!(benches);
