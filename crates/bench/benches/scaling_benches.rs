//! Criterion benchmarks of end-to-end simulation cost versus machine size.
//!
//! The harness itself must stay cheap as the simulated machine grows — the
//! point of the scale-free IR is that analysis cost does not scale with the
//! GPU count, and these benches measure the real wall-clock cost of pushing an
//! application iteration through Diffuse at different machine sizes.

use apps::Mode;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn bench_black_scholes_iteration(c: &mut Criterion) {
    let mut group = c.benchmark_group("black_scholes_sim_wallclock");
    group.sample_size(10);
    for gpus in [8usize, 64, 128] {
        group.bench_with_input(BenchmarkId::new("gpus", gpus), &gpus, |b, &gpus| {
            b.iter(|| apps::black_scholes::run(Mode::Fused, gpus, 1 << 18, 3, false))
        });
    }
    group.finish();
}

fn bench_cg_iteration(c: &mut Criterion) {
    let mut group = c.benchmark_group("cg_sim_wallclock");
    group.sample_size(10);
    for gpus in [8usize, 64] {
        group.bench_with_input(BenchmarkId::new("gpus", gpus), &gpus, |b, &gpus| {
            b.iter(|| apps::cg::run(Mode::Fused, gpus, 1 << 16, 3, false))
        });
    }
    group.finish();
}

/// The cross-library stencil workload: each heat step is one fused launch
/// spanning the stencil and dense libraries, so this tracks the end-to-end
/// cost of pushing a cross-library window through analysis + lowering.
fn bench_heat_iteration(c: &mut Criterion) {
    let mut group = c.benchmark_group("heat_sim_wallclock");
    group.sample_size(10);
    for gpus in [8usize, 64] {
        group.bench_with_input(BenchmarkId::new("gpus", gpus), &gpus, |b, &gpus| {
            b.iter(|| apps::heat::run(Mode::Fused, gpus, 1 << 16, 3, false))
        });
    }
    group.finish();
}

/// The batched Black-Scholes workload with and without horizontal fusion:
/// tracks the wall-clock cost of pushing a many-batch window through the
/// horizontal pass (planning + reorder + refold), and — via the `vertical`
/// and `unfused` legs — the launch-overhead ratio the merge buys, which the
/// scraper records into `BENCH_fusion.json`.
fn bench_batched_black_scholes(c: &mut Criterion) {
    let mut group = c.benchmark_group("batched_bs_sim_wallclock");
    group.sample_size(10);
    let batches = 16usize;
    group.bench_function("horizontal", |b| {
        b.iter(|| apps::black_scholes_batched::run(Mode::Fused, 8, 1 << 16, batches, 3, false, true))
    });
    group.bench_function("vertical", |b| {
        b.iter(|| apps::black_scholes_batched::run(Mode::Fused, 8, 1 << 16, batches, 3, false, false))
    });
    group.bench_function("unfused", |b| {
        b.iter(|| {
            apps::black_scholes_batched::run(Mode::Unfused, 8, 1 << 16, batches, 3, false, false)
        })
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_black_scholes_iteration,
    bench_cg_iteration,
    bench_heat_iteration,
    bench_batched_black_scholes
);
criterion_main!(benches);
