//! Criterion benchmarks of the fusion analysis itself.
//!
//! These measure real wall-clock time (not simulated time) of the scale-free
//! analyses: finding fusible prefixes, canonicalizing windows for memoization,
//! and replaying memoized decisions.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use fusion::{find_fusible_prefix, CanonicalWindow, MemoCache};
use ir::{Domain, IndexTask, Partition, Privilege, StoreArg, StoreId, TaskId};
use std::collections::HashMap;

/// A chain of fusible elementwise tasks: t_i reads store i and writes i+1.
fn elementwise_chain(len: usize, launch_points: u64) -> Vec<IndexTask> {
    let block = Partition::block(vec![64]);
    (0..len)
        .map(|i| {
            IndexTask::new(
                TaskId(i as u64),
                0,
                "ew",
                Domain::linear(launch_points),
                vec![
                    StoreArg::new(StoreId(i as u64), block.clone(), Privilege::Read),
                    StoreArg::new(StoreId(i as u64 + 1), block.clone(), Privilege::Write),
                ],
                vec![],
            )
        })
        .collect()
}

fn shapes(n: u64) -> HashMap<StoreId, Vec<u64>> {
    (0..n).map(|i| (StoreId(i), vec![4096])).collect()
}

fn bench_prefix_search(c: &mut Criterion) {
    let mut group = c.benchmark_group("fusible_prefix");
    for window in [8usize, 32, 128] {
        let tasks = elementwise_chain(window, 8);
        group.bench_with_input(BenchmarkId::new("window", window), &tasks, |b, tasks| {
            b.iter(|| find_fusible_prefix(std::hint::black_box(tasks)))
        });
    }
    group.finish();
}

/// The analysis is scale-free: its cost must not grow with the launch-domain
/// size (the number of GPUs).
fn bench_scale_freedom(c: &mut Criterion) {
    let mut group = c.benchmark_group("prefix_vs_gpu_count");
    for gpus in [8u64, 128, 1024] {
        let tasks = elementwise_chain(32, gpus);
        group.bench_with_input(BenchmarkId::new("gpus", gpus), &tasks, |b, tasks| {
            b.iter(|| find_fusible_prefix(std::hint::black_box(tasks)))
        });
    }
    group.finish();
}

fn bench_canonicalization_and_memo(c: &mut Criterion) {
    let tasks = elementwise_chain(32, 8);
    let shapes = shapes(64);
    c.bench_function("canonicalize_window_32", |b| {
        b.iter(|| CanonicalWindow::new(std::hint::black_box(&tasks), &shapes))
    });
    let key = CanonicalWindow::new(&tasks, &shapes);
    let mut cache: MemoCache<usize> = MemoCache::new();
    cache.insert(key.clone(), 32);
    c.bench_function("memo_hit_vs_reanalysis", |b| {
        b.iter(|| {
            let key = CanonicalWindow::new(std::hint::black_box(&tasks), &shapes);
            cache.get(&key).copied().unwrap_or_else(|| find_fusible_prefix(&tasks))
        })
    });
}

criterion_group!(
    benches,
    bench_prefix_search,
    bench_scale_freedom,
    bench_canonicalization_and_memo
);
criterion_main!(benches);
