//! Criterion benchmarks of the fusion analysis itself.
//!
//! These measure real wall-clock time (not simulated time) of the scale-free
//! analyses: finding fusible prefixes, canonicalizing windows for memoization,
//! and replaying memoized decisions — including the fingerprint-first probe
//! that the steady-state (all-hits) path uses, which performs no allocation
//! and no canonicalization.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use fusion::{find_fusible_prefix, fusible_segments, CanonicalWindow, MemoCache};
use ir::{Domain, IndexTask, Partition, Privilege, StoreArg, StoreId, TaskId, TaskWindow};

/// A chain of fusible elementwise tasks: t_i reads store i and writes i+1.
/// Shapes are stamped the way the Diffuse context stamps them at submit time.
fn elementwise_chain(len: usize, launch_points: u64) -> Vec<IndexTask> {
    let block = Partition::block(vec![64]);
    (0..len)
        .map(|i| {
            IndexTask::new(
                TaskId(i as u64),
                0,
                "ew",
                Domain::linear(launch_points),
                vec![
                    StoreArg::new(StoreId(i as u64), block.clone(), Privilege::Read)
                        .with_shape(vec![4096u64]),
                    StoreArg::new(StoreId(i as u64 + 1), block.clone(), Privilege::Write)
                        .with_shape(vec![4096u64]),
                ],
                vec![],
            )
        })
        .collect()
}

fn bench_prefix_search(c: &mut Criterion) {
    let mut group = c.benchmark_group("fusible_prefix");
    for window in [8usize, 32, 128] {
        let tasks = elementwise_chain(window, 8);
        group.bench_with_input(BenchmarkId::new("window", window), &tasks, |b, tasks| {
            b.iter(|| find_fusible_prefix(std::hint::black_box(tasks)))
        });
    }
    group.finish();
}

/// The analysis is scale-free: its cost must not grow with the launch-domain
/// size (the number of GPUs).
fn bench_scale_freedom(c: &mut Criterion) {
    let mut group = c.benchmark_group("prefix_vs_gpu_count");
    for gpus in [8u64, 128, 1024] {
        let tasks = elementwise_chain(32, gpus);
        group.bench_with_input(BenchmarkId::new("gpus", gpus), &tasks, |b, tasks| {
            b.iter(|| find_fusible_prefix(std::hint::black_box(tasks)))
        });
    }
    group.finish();
}

/// One-pass segmentation of a whole window vs. the window length.
fn bench_segments(c: &mut Criterion) {
    let mut group = c.benchmark_group("fusible_segments");
    for window in [32usize, 128] {
        let tasks = elementwise_chain(window, 8);
        group.bench_with_input(BenchmarkId::new("window", window), &tasks, |b, tasks| {
            b.iter(|| fusible_segments(std::hint::black_box(tasks)))
        });
    }
    group.finish();
}

fn bench_canonicalization_and_memo(c: &mut Criterion) {
    let tasks = elementwise_chain(32, 8);
    c.bench_function("canonicalize_window_32", |b| {
        b.iter(|| CanonicalWindow::new(std::hint::black_box(&tasks)))
    });
    let key = CanonicalWindow::new(&tasks);
    let mut cache: MemoCache<usize> = MemoCache::new();
    cache.insert(key.clone(), 32);
    // The slow reference path: build a canonical key, then look it up.
    c.bench_function("memo_hit_full_key_32", |b| {
        b.iter(|| {
            let key = CanonicalWindow::new(std::hint::black_box(&tasks));
            cache.get(&key).copied().unwrap_or_else(|| find_fusible_prefix(&tasks))
        })
    });
    // The fast path Diffuse actually runs per flush: probe by the window's
    // incrementally maintained fingerprint — no allocation, no key build.
    let window: TaskWindow = tasks.iter().cloned().collect();
    c.bench_function("memo_hit_fingerprint_probe_32", |b| {
        b.iter(|| {
            cache
                .probe(std::hint::black_box(&window))
                .copied()
                .unwrap_or_else(|| find_fusible_prefix(window.tasks()))
        })
    });
}

criterion_group!(
    benches,
    bench_prefix_search,
    bench_scale_freedom,
    bench_segments,
    bench_canonicalization_and_memo
);
criterion_main!(benches);
