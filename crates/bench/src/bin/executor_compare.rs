//! Compares *host wall-clock* time of functional runs under the serial and
//! work-stealing executors (see `docs/RUNTIME.md` and `docs/BENCHMARKS.md`).
//!
//! Unlike the fig* binaries, which report *simulated* time (identical under
//! both executors by construction), this binary measures how long the host
//! actually takes to execute the kernels of a functional run. The unfused
//! configurations emit many small launches whose dependency graph has real
//! width — exactly the launch streams the work-stealing executor overlaps.
//!
//! Run with `cargo run --release --bin executor_compare`.

use std::time::Instant;

use apps::Mode;

/// Wall-clocks one functional app run under the given `DIFFUSE_EXECUTOR`
/// setting, returning (wall seconds, simulated seconds, checksum).
///
/// The env var is the only executor knob that reaches the unmodified
/// `apps::*::run` entry points (their signatures carry no executor, by
/// design — application code is executor-agnostic). Flipping it here is
/// safe: each run's runtime (and its worker pool) is dropped and joined
/// before the next flip, so no other thread exists while we mutate the
/// environment. Code that builds its own workload should prefer
/// `apps::common::dense_context_with_executor`.
fn timed<F>(executor: &str, run: F) -> (f64, f64, Option<f64>)
where
    F: Fn() -> apps::BenchmarkResult,
{
    std::env::set_var("DIFFUSE_EXECUTOR", executor);
    let start = Instant::now();
    let result = run();
    let wall = start.elapsed().as_secs_f64();
    std::env::remove_var("DIFFUSE_EXECUTOR");
    (wall, result.elapsed, result.checksum)
}

fn compare<F>(name: &str, run: F)
where
    F: Fn() -> apps::BenchmarkResult,
{
    let (serial_wall, serial_sim, serial_sum) = timed("serial", &run);
    let (parallel_wall, parallel_sim, parallel_sum) = timed("parallel", &run);
    assert_eq!(
        serial_sim, parallel_sim,
        "simulated time must not depend on the executor"
    );
    match (serial_sum, parallel_sum) {
        (Some(a), Some(b)) => assert!(
            (a - b).abs() <= 1e-9 * a.abs().max(1.0),
            "checksums diverged: serial {a} vs parallel {b}"
        ),
        _ => {}
    }
    println!(
        "{name:<28}{serial_wall:>14.3}{parallel_wall:>14.3}{:>10.2}x",
        serial_wall / parallel_wall.max(1e-9)
    );
}

fn main() {
    let gpus = 8;
    let per_gpu = 1u64 << 13;
    let iters = 4;
    println!("=== Serial vs work-stealing executor: functional-run wall-clock ===");
    println!("({gpus} simulated GPUs, {per_gpu} elements/GPU, {iters} iterations; host seconds, lower is better)");
    println!(
        "{:<28}{:>14}{:>14}{:>10}",
        "Workload", "serial (s)", "parallel (s)", "speedup"
    );
    compare("Black-Scholes (unfused)", || {
        apps::black_scholes::run(Mode::Unfused, gpus, per_gpu, iters, true)
    });
    compare("Black-Scholes (fused)", || {
        apps::black_scholes::run(Mode::Fused, gpus, per_gpu, iters, true)
    });
    compare("Jacobi (unfused)", || {
        apps::jacobi::run(Mode::Unfused, gpus, per_gpu, iters, true)
    });
    compare("CG (unfused)", || {
        apps::cg::run(Mode::Unfused, gpus, per_gpu, iters, true)
    });
    println!("\nSimulated time and functional checksums are identical under both");
    println!("executors; only the host wall-clock differs.");
}
