//! Compares *host wall-clock* time of functional runs across the full
//! executor × kernel-backend matrix (see `docs/RUNTIME.md`,
//! `docs/BACKENDS.md` and `docs/BENCHMARKS.md`).
//!
//! Unlike the fig* binaries, which report *simulated* time (identical under
//! every executor and backend by construction), this binary measures how long
//! the host actually takes to execute the kernels of a functional run, under
//! each of the six (executor, backend) combinations:
//!
//! * `serial` / `parallel` — whether independent launches overlap across
//!   worker threads (the DAG-width axis), and
//! * `interp` / `closure` / `simd` — whether kernels are tree-walked per
//!   element, pre-lowered to micro-op streams by the JIT-closure backend, or
//!   executed as lane-parallel chunked kernels by the SIMD backend (the
//!   steady-state axis).
//!
//! The binary *asserts* the two invariants every combination must satisfy —
//! identical simulated time and identical functional checksums — so the CI
//! step that runs it doubles as an end-to-end 2×3 invariance test.
//!
//! Run with `cargo run --release --bin executor_compare`.

use std::time::Instant;

use apps::Mode;

/// The six measured combinations, as (executor, backend) env values.
const MATRIX: [(&str, &str); 6] = [
    ("serial", "interp"),
    ("serial", "closure"),
    ("serial", "simd"),
    ("parallel", "interp"),
    ("parallel", "closure"),
    ("parallel", "simd"),
];

/// Wall-clocks one functional app run under the given `DIFFUSE_EXECUTOR` /
/// `DIFFUSE_BACKEND` setting, returning (wall seconds, simulated seconds,
/// checksum).
///
/// The env vars are the only knobs that reach the unmodified `apps::*::run`
/// entry points (their signatures carry neither axis, by design — application
/// code is executor- and backend-agnostic). Flipping them here is safe: each
/// run's runtime (and its worker pool) is dropped and joined before the next
/// flip, so no other thread exists while we mutate the environment. Code that
/// builds its own workloads should prefer
/// `apps::common::dense_context_configured`.
fn timed<F>(executor: &str, backend: &str, run: F) -> (f64, f64, Option<f64>)
where
    F: Fn() -> apps::BenchmarkResult,
{
    std::env::set_var("DIFFUSE_EXECUTOR", executor);
    std::env::set_var("DIFFUSE_BACKEND", backend);
    let start = Instant::now();
    let result = run();
    let wall = start.elapsed().as_secs_f64();
    std::env::remove_var("DIFFUSE_EXECUTOR");
    std::env::remove_var("DIFFUSE_BACKEND");
    (wall, result.elapsed, result.checksum)
}

fn compare<F>(name: &str, run: F)
where
    F: Fn() -> apps::BenchmarkResult,
{
    let mut walls = Vec::new();
    let (baseline_wall, baseline_sim, baseline_sum) = timed(MATRIX[0].0, MATRIX[0].1, &run);
    walls.push(baseline_wall);
    for (executor, backend) in &MATRIX[1..] {
        let (wall, sim, sum) = timed(executor, backend, &run);
        assert_eq!(
            baseline_sim, sim,
            "{name}: simulated time must not depend on {executor}/{backend}"
        );
        if let (Some(a), Some(b)) = (baseline_sum, sum) {
            assert!(
                (a - b).abs() <= 1e-9 * a.abs().max(1.0),
                "{name}: checksums diverged under {executor}/{backend}: {a} vs {b}"
            );
        }
        walls.push(wall);
    }
    print!("{name:<28}");
    for wall in walls {
        print!("{wall:>17.3}");
    }
    println!();
}

fn main() {
    let gpus = 8;
    let per_gpu = 1u64 << 13;
    let iters = 4;
    println!("=== Executor × backend matrix: functional-run wall-clock ===");
    println!(
        "({gpus} simulated GPUs, {per_gpu} elements/GPU, {iters} iterations; host seconds, lower is better)"
    );
    print!("{:<28}", "Workload");
    for (executor, backend) in MATRIX {
        print!("{:>17}", format!("{executor}/{backend}"));
    }
    println!();
    compare("Black-Scholes (unfused)", || {
        apps::black_scholes::run(Mode::Unfused, gpus, per_gpu, iters, true)
    });
    compare("Black-Scholes (fused)", || {
        apps::black_scholes::run(Mode::Fused, gpus, per_gpu, iters, true)
    });
    compare("Jacobi (unfused)", || {
        apps::jacobi::run(Mode::Unfused, gpus, per_gpu, iters, true)
    });
    compare("CG (unfused)", || {
        apps::cg::run(Mode::Unfused, gpus, per_gpu, iters, true)
    });
    compare("CG (fused)", || {
        apps::cg::run(Mode::Fused, gpus, per_gpu, iters, true)
    });
    println!("\nSimulated time and functional checksums are identical across the");
    println!("whole 2x3 matrix (asserted above); only the host wall-clock differs.");
    println!("Serial-vs-parallel wins scale with host cores and DAG width; the");
    println!("closure and SIMD backends' wins show on elementwise-heavy fused");
    println!("windows, with the lane-parallel SIMD backend ahead on both.");
}
