//! Ablations discussed in Section 7: task fusion without kernel fusion yields
//! little benefit at these task granularities, and memoization is required to
//! keep analysis/compilation cost off the critical path.

use apps::Mode;
use dense::DenseContext;
use diffuse::{Context, DiffuseConfig};
use machine::MachineConfig;

fn black_scholes_like(np: &DenseContext, n: u64, iters: u64) -> (f64, f64, u64) {
    let s = np.full(&[n], 100.0);
    let k = np.full(&[n], 105.0);
    for _ in 0..2 {
        let _ = s.div(&k).ln().scalar_mul(0.5).exp().scalar_add(1.0);
    }
    np.flush();
    np.context().reset_timing();
    for _ in 0..iters {
        let _ = s.div(&k).ln().scalar_mul(0.5).exp().scalar_add(1.0);
    }
    np.flush();
    let stats = np.context().stats();
    (np.context().elapsed(), stats.compile_time, stats.compilations)
}

fn main() {
    bench::print_execution_axes();
    let gpus = 8;
    let n = (1u64 << 22) * gpus as u64;
    let iters = 20;
    println!("=== Ablation: elementwise chain, 8 GPUs, {iters} iterations ===");
    let configs = [
        ("full Diffuse", DiffuseConfig::fused(MachineConfig::with_gpus(gpus))),
        ("task fusion only", DiffuseConfig::task_fusion_only(MachineConfig::with_gpus(gpus))),
        ("no memoization", DiffuseConfig::fused(MachineConfig::with_gpus(gpus)).without_memoization()),
        ("unfused", DiffuseConfig::unfused(MachineConfig::with_gpus(gpus))),
    ];
    println!("{:<20}{:>16}{:>18}{:>16}", "Configuration", "Time (s)", "Compile time (s)", "Compilations");
    for (name, config) in configs {
        let np = DenseContext::new(Context::new(config.simulation_only()));
        let (elapsed, compile_time, compilations) = black_scholes_like(&np, n, iters);
        println!("{name:<20}{elapsed:>16.4}{compile_time:>18.3}{compilations:>16}");
    }
    println!();
    println!("Expected shape: full Diffuse is fastest; task fusion alone only removes");
    println!("runtime overhead (little benefit at >1ms tasks); disabling memoization");
    println!("recompiles every window (compare the compilation counts); unfused is slowest.");

    // Ablation mode comparison on a real application.
    println!("\n=== CG with and without Diffuse (8 GPUs) ===");
    for mode in [Mode::Fused, Mode::Unfused] {
        let r = apps::cg::run(mode, gpus, 1 << 27, 10, false);
        println!("{:<16} throughput {:.2} it/s, {:.1} launches/iter", mode.to_string(), r.throughput, r.launches_per_iteration);
    }
}
