//! Regenerates Figure 9: index tasks per iteration with and without fusion,
//! average task length, and the window size selected by Diffuse.

use apps::Mode;

/// `(name, runner)` for one row of the task-count table.
type AppRow = (&'static str, Box<dyn Fn(Mode) -> apps::BenchmarkResult>);

fn main() {
    bench::print_execution_axes();
    let gpus = 8;
    let iters = 10;
    println!("=== Figure 9: tasks per iteration (8 GPUs, simulation only) ===");
    println!(
        "{:<14}{:>16}{:>22}{:>20}{:>14}",
        "Benchmark", "Tasks/iter", "Tasks/iter (fused)", "Avg task len (ms)", "Window size"
    );
    let rows: Vec<AppRow> = vec![
        ("Black-Scholes", Box::new(move |m| apps::black_scholes::run(m, gpus, 1 << 27, iters, false))),
        ("Jacobi", Box::new(move |m| apps::jacobi::run(m, gpus, 1u64 << 32, iters, false))),
        ("CG", Box::new(move |m| apps::cg::run(m, gpus, 1 << 27, iters, false))),
        ("BiCGSTAB", Box::new(move |m| apps::bicgstab::run(m, gpus, 1 << 27, iters, false))),
        ("GMG", Box::new(move |m| apps::gmg::run(m, gpus, 1 << 26, iters, false))),
        ("CFD", Box::new(move |m| apps::cfd::run(m, gpus, 1 << 18, iters, false))),
        ("TorchSWE", Box::new(move |m| apps::torchswe::run(m, gpus, 1 << 18, iters, false))),
    ];
    for (name, run) in rows {
        let unfused = run(Mode::Unfused);
        let fused = run(Mode::Fused);
        println!(
            "{:<14}{:>16.1}{:>22.1}{:>20.2}{:>14}",
            name,
            unfused.tasks_per_iteration,
            fused.launches_per_iteration,
            unfused.avg_task_ms,
            fused.window_size
        );
    }
}
