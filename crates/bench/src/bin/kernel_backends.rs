//! Times the interpreter vs JIT-closure vs SIMD kernel backends on the
//! fused CG and Jacobi windows and records the trajectory in
//! `BENCH_kernel_backends.json` (schema in `docs/BENCHMARKS.md`).
//!
//! The windows are built exactly the way `diffuse::Context` builds them: the
//! constituent task bodies are composed in program order and pushed through
//! `kernel::Pipeline::default()`, so the measured artifact is the real fused
//! loop nest, not a synthetic microbenchmark. For each backend the binary
//! reports
//!
//! * **ns_per_element** — steady-state execution wall-clock divided by
//!   elements processed (the quantity memoized execution pays per iteration),
//! * **compile_ns** — one-time host cost of `KernelBackend::compile` (the
//!   quantity memoization amortizes).
//!
//! Absolute nanoseconds are machine-dependent, so the regression gate runs on
//! the machine-independent **speedup ratios** (interp ÷ closure and
//! interp ÷ simd per-element time): `kernel_backends --check` re-measures and
//! fails if either current speedup regressed more than 20% against the
//! checked-in baseline, if the closure backend is no longer faster than the
//! interpreter at all, or if the SIMD backend stops beating the closure
//! backend per element.
//!
//! ```sh
//! cargo run --release --bin kernel_backends            # rewrite the baseline
//! cargo run --release --bin kernel_backends -- --check # CI regression gate
//! ```

use std::time::Instant;

use kernel::{
    BackendKind, BufferId, BufferRole, CompiledKernel, KernelBackend, KernelModule, LoopBuilder,
    Pipeline,
};

/// Elements per buffer in the measured windows.
const N: usize = 1 << 15;

/// Allowed speedup regression in percent before `--check` fails
/// (`KERNEL_BACKENDS_TOLERANCE` overrides; raise it once when migrating the
/// baseline to different CI hardware, then re-record and lower it back).
fn tolerance_pct() -> f64 {
    std::env::var("KERNEL_BACKENDS_TOLERANCE")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(20.0)
}
/// Path of the recorded trajectory, relative to the workspace root.
const BENCH_FILE: &str = "BENCH_kernel_backends.json";

/// Measurement window in milliseconds (`KERNEL_BACKENDS_MS` overrides).
/// `--check` runs double-length windows: the regression verdict deserves
/// more stability than a baseline refresh.
fn measure_ms() -> u64 {
    let base = std::env::var("KERNEL_BACKENDS_MS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(200);
    if std::env::args().any(|a| a == "--check") {
        base * 2
    } else {
        base
    }
}

/// The fused CG vector window: x += alpha*p; r -= alpha*q; rs += r*r;
/// p = r + beta*p — the four vector updates between SpMVs that Diffuse fuses
/// into one launch (buffers: 0=x, 1=p, 2=q, 3=r, 4=rs; scalars: alpha, beta).
fn cg_window() -> (KernelModule, Vec<Vec<f64>>, Vec<f64>) {
    let mut m = KernelModule::new(5);
    m.set_role(BufferId(0), BufferRole::InOut);
    m.set_role(BufferId(1), BufferRole::InOut);
    m.set_role(BufferId(3), BufferRole::InOut);
    m.set_role(BufferId(4), BufferRole::Reduction);

    let mut axpy_x = LoopBuilder::new("axpy_x", BufferId(0));
    let p = axpy_x.load(BufferId(1));
    let x = axpy_x.load(BufferId(0));
    let alpha = axpy_x.param(0);
    let ap = axpy_x.mul(alpha, p);
    let xv = axpy_x.add(x, ap);
    axpy_x.store(BufferId(0), xv);
    m.push_loop(axpy_x.finish());

    let mut axpy_r = LoopBuilder::new("axpy_r", BufferId(3));
    let q = axpy_r.load(BufferId(2));
    let r = axpy_r.load(BufferId(3));
    let alpha = axpy_r.param(0);
    let nalpha = axpy_r.unary(kernel::UnaryOp::Neg, alpha);
    let aq = axpy_r.mul(nalpha, q);
    let rv = axpy_r.add(r, aq);
    axpy_r.store(BufferId(3), rv);
    m.push_loop(axpy_r.finish());

    let mut dot = LoopBuilder::new("dot_rr", BufferId(3));
    let r = dot.load(BufferId(3));
    let rr = dot.mul(r, r);
    dot.reduce(BufferId(4), kernel::ReduceOp::Sum, rr);
    m.push_loop(dot.finish());

    let mut aypx = LoopBuilder::new("aypx_p", BufferId(1));
    let r = aypx.load(BufferId(3));
    let p = aypx.load(BufferId(1));
    let beta = aypx.param(1);
    let bp = aypx.mul(beta, p);
    let pv = aypx.add(r, bp);
    aypx.store(BufferId(1), pv);
    m.push_loop(aypx.finish());

    let lens = [N, N, N, N, 1];
    let fused = Pipeline::default().run(m, &lens).module;
    let buffers: Vec<Vec<f64>> = (0..4)
        .map(|b| (0..N).map(|i| 1.0 + (b as f64) * 0.25 + (i % 97) as f64 * 1e-3).collect())
        .chain(std::iter::once(vec![0.0]))
        .collect();
    (fused, buffers, vec![1.0e-3, 0.5])
}

/// The fused Jacobi correction window: residual = b - ax;
/// correction = residual/diag; x += correction — the elementwise tail after
/// the GEMV, with both temporaries demoted to locals and forwarded away
/// (buffers: 0=b, 1=ax, 2=x, 3=residual(local), 4=correction(local);
/// scalar: 1/diag).
fn jacobi_window() -> (KernelModule, Vec<Vec<f64>>, Vec<f64>) {
    let mut m = KernelModule::new(5);
    m.set_role(BufferId(2), BufferRole::InOut);
    m.set_role(BufferId(3), BufferRole::Local);
    m.set_role(BufferId(4), BufferRole::Local);

    let mut sub = LoopBuilder::new("residual", BufferId(0));
    let b = sub.load(BufferId(0));
    let ax = sub.load(BufferId(1));
    let res = sub.binary(kernel::BinaryOp::Sub, b, ax);
    sub.store(BufferId(3), res);
    m.push_loop(sub.finish());

    let mut scale = LoopBuilder::new("correction", BufferId(3));
    let res = scale.load(BufferId(3));
    let inv = scale.param(0);
    let cor = scale.mul(res, inv);
    scale.store(BufferId(4), cor);
    m.push_loop(scale.finish());

    let mut add = LoopBuilder::new("update", BufferId(2));
    let x = add.load(BufferId(2));
    let cor = add.load(BufferId(4));
    let xv = add.add(x, cor);
    add.store(BufferId(2), xv);
    m.push_loop(add.finish());

    let lens = [N; 5];
    let fused = Pipeline::default().run(m, &lens).module;
    let buffers: Vec<Vec<f64>> = (0..5)
        .map(|b| (0..N).map(|i| 1.0 + (b as f64) * 0.125 + (i % 53) as f64 * 1e-3).collect())
        .collect();
    (fused, buffers, vec![1.0 / 64.0])
}

/// Steady-state per-element execution time in nanoseconds.
fn time_execute(kernel: &dyn CompiledKernel, buffers: &mut [Vec<f64>], scalars: &[f64]) -> f64 {
    // Warm up once (page in buffers, populate caches).
    kernel.execute(buffers, scalars).expect("kernel failed");
    let budget = std::time::Duration::from_millis(measure_ms());
    let start = Instant::now();
    let mut iters = 0u64;
    while start.elapsed() < budget {
        kernel.execute(buffers, scalars).expect("kernel failed");
        iters += 1;
    }
    let total_ns = start.elapsed().as_nanos() as f64;
    total_ns / (iters as f64 * N as f64)
}

/// Mean one-time compilation cost in nanoseconds.
fn time_compile(backend: &dyn KernelBackend, module: &KernelModule) -> f64 {
    let budget = std::time::Duration::from_millis(measure_ms() / 4);
    let start = Instant::now();
    let mut iters = 0u64;
    while start.elapsed() < budget {
        let _ = backend.compile(module).expect("compile failed");
        iters += 1;
    }
    start.elapsed().as_nanos() as f64 / iters as f64
}

/// The measured backends, in column order.
const BACKENDS: [BackendKind; 3] = [BackendKind::Interp, BackendKind::Closure, BackendKind::Simd];

struct WindowResult {
    window: &'static str,
    /// Per-element execution ns and one-time compile ns, indexed like
    /// [`BACKENDS`].
    ns: [f64; 3],
    compile_ns: [f64; 3],
}

impl WindowResult {
    fn interp_ns(&self) -> f64 {
        self.ns[0]
    }
    fn closure_ns(&self) -> f64 {
        self.ns[1]
    }
    fn simd_ns(&self) -> f64 {
        self.ns[2]
    }
    /// interp ÷ closure per-element time (the historical gated ratio).
    fn speedup(&self) -> f64 {
        self.interp_ns() / self.closure_ns().max(1e-9)
    }
    /// interp ÷ simd per-element time (gated like the closure ratio).
    fn simd_speedup(&self) -> f64 {
        self.interp_ns() / self.simd_ns().max(1e-9)
    }
}

/// A benchmark case: the module to run plus its input buffers and scalars.
type WindowCase = (KernelModule, Vec<Vec<f64>>, Vec<f64>);

fn measure_window(window: &'static str, build: fn() -> WindowCase) -> WindowResult {
    let (module, buffers, scalars) = build();
    let mut result = WindowResult {
        window,
        ns: [0.0; 3],
        compile_ns: [0.0; 3],
    };
    for (i, kind) in BACKENDS.into_iter().enumerate() {
        let backend = kind.backend();
        result.compile_ns[i] = time_compile(backend.as_ref(), &module);
        let compiled = backend.compile(&module).expect("compile failed");
        let mut bufs = buffers.clone();
        result.ns[i] = time_execute(compiled.as_ref(), &mut bufs, &scalars);
    }
    result
}

/// Records the measured windows through the shared `BENCH_*.json` helpers
/// (`crates/bench/src/lib.rs`).
fn json_lines(results: &[WindowResult]) -> Vec<String> {
    use bench::JsonValue;
    let mut out = Vec::new();
    for r in results {
        for (i, kind) in BACKENDS.into_iter().enumerate() {
            out.push(bench::json_line(
                &format!("kernel_backends/{}/{}", r.window, kind.id()),
                &[
                    ("backend", JsonValue::Str(kind.id().to_string())),
                    ("ns_per_element", JsonValue::Num(r.ns[i])),
                    ("compile_ns", JsonValue::Num(r.compile_ns[i])),
                    ("elements", JsonValue::Int(N as u64)),
                ],
            ));
        }
        out.push(bench::json_line(
            &format!("kernel_backends/{}/speedup", r.window),
            &[("speedup", JsonValue::Num(r.speedup()))],
        ));
        out.push(bench::json_line(
            &format!("kernel_backends/{}/simd_speedup", r.window),
            &[("speedup", JsonValue::Num(r.simd_speedup()))],
        ));
    }
    out
}

fn main() {
    let check = std::env::args().any(|a| a == "--check");
    println!("=== Kernel backends: interpreter vs JIT closures vs SIMD (wall-clock) ===");
    println!("({N} elements/buffer, {} ms windows)\n", measure_ms());
    println!(
        "{:<10}{:>14}{:>14}{:>12}{:>10}{:>10}{:>14}{:>14}{:>12}",
        "Window",
        "interp ns/e",
        "closure ns/e",
        "simd ns/e",
        "clo spd",
        "simd spd",
        "clo compile",
        "simd compile",
        "int compile"
    );
    let results = [
        measure_window("cg", cg_window),
        measure_window("jacobi", jacobi_window),
    ];
    for r in &results {
        println!(
            "{:<10}{:>14.2}{:>14.2}{:>12.2}{:>9.2}x{:>9.2}x{:>11.0} ns{:>11.0} ns{:>9.0} ns",
            r.window,
            r.interp_ns(),
            r.closure_ns(),
            r.simd_ns(),
            r.speedup(),
            r.simd_speedup(),
            r.compile_ns[1],
            r.compile_ns[2],
            r.compile_ns[0]
        );
    }
    println!();

    for r in &results {
        assert!(
            r.speedup() > 1.0,
            "{}: closure backend must beat the interpreter per element \
             (interp {:.2} ns vs closure {:.2} ns)",
            r.window,
            r.interp_ns(),
            r.closure_ns()
        );
        // The SIMD backend's whole reason to exist: constant-trip-count lane
        // loops must beat the closure backend's dynamic-length chunk loops.
        assert!(
            r.simd_ns() < r.closure_ns(),
            "{}: simd backend must beat the closure backend per element \
             (closure {:.2} ns vs simd {:.2} ns)",
            r.window,
            r.closure_ns(),
            r.simd_ns()
        );
    }

    if check {
        let baseline = std::fs::read_to_string(BENCH_FILE)
            .unwrap_or_else(|e| panic!("--check needs a checked-in {BENCH_FILE}: {e}"));
        let mut failed = false;
        let mut any = false;
        let tolerance = tolerance_pct();
        for r in &results {
            for (ratio_key, current) in [
                (format!("kernel_backends/{}/speedup", r.window), r.speedup()),
                (
                    format!("kernel_backends/{}/simd_speedup", r.window),
                    r.simd_speedup(),
                ),
            ] {
                // The writer replaces the file; parse_metric tolerates
                // hand-appended history by taking the last entry.
                let Some(base) = bench::parse_metric(&baseline, &ratio_key, "speedup") else {
                    println!("warning: no baseline entry for {ratio_key}; skipping");
                    continue;
                };
                any = true;
                let floor = base * (1.0 - tolerance / 100.0);
                let verdict = if current < floor {
                    failed = true;
                    "REGRESSED"
                } else {
                    "ok"
                };
                println!(
                    "{ratio_key}: baseline {base:.2}x, current {current:.2}x, \
                     floor {floor:.2}x — {verdict}"
                );
            }
        }
        assert!(any, "no speedup entries in {BENCH_FILE}");
        assert!(
            !failed,
            "kernel-backend speedup regressed >{tolerance}% vs {BENCH_FILE}; if this \
             run is on different hardware than the baseline, re-record it there \
             (`cargo run --release --bin kernel_backends`) or raise \
             KERNEL_BACKENDS_TOLERANCE for the migration"
        );
        println!("\ncheck passed: speedups within {tolerance}% of the recorded baseline.");
    } else {
        let path = bench::write_bench_file("kernel_backends", &json_lines(&results));
        println!("recorded {path}");
    }
}
