//! Regenerates Figure 10: Black-Scholes and Jacobi weak scaling.

use apps::Mode;
use bench::{print_weak_scaling, sweep, GPU_COUNTS};

fn main() {
    bench::print_execution_axes();
    let iters = 10;
    let bs = |mode, gpus| apps::black_scholes::run(mode, gpus, 1 << 27, iters, false);
    let series = vec![
        sweep(Mode::Fused, GPU_COUNTS, bs),
        sweep(Mode::Unfused, GPU_COUNTS, bs),
    ];
    print_weak_scaling("Figure 10a: Black-Scholes", &series);

    let jac = |mode, gpus| apps::jacobi::run(mode, gpus, 1u64 << 32, iters, false);
    let series = vec![
        sweep(Mode::Fused, GPU_COUNTS, jac),
        sweep(Mode::Unfused, GPU_COUNTS, jac),
    ];
    print_weak_scaling("Figure 10b: Dense Jacobi iteration", &series);
}
