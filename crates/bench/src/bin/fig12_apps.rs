//! Regenerates Figure 12: GMG, CFD and TorchSWE weak scaling.

use apps::Mode;
use bench::{print_weak_scaling, sweep, GPU_COUNTS};

fn main() {
    bench::print_execution_axes();
    let iters = 10;
    let gmg = |mode, gpus| apps::gmg::run(mode, gpus, 1 << 26, iters, false);
    let series = vec![
        sweep(Mode::Fused, GPU_COUNTS, gmg),
        sweep(Mode::Unfused, GPU_COUNTS, gmg),
    ];
    print_weak_scaling("Figure 12a: Geometric multigrid", &series);

    let cfd = |mode, gpus| apps::cfd::run(mode, gpus, 1 << 18, iters, false);
    let series = vec![
        sweep(Mode::Fused, GPU_COUNTS, cfd),
        sweep(Mode::Unfused, GPU_COUNTS, cfd),
    ];
    print_weak_scaling("Figure 12b: CFD channel flow", &series);

    let swe = |mode, gpus| apps::torchswe::run(mode, gpus, 1 << 18, iters, false);
    let series = vec![
        sweep(Mode::Fused, GPU_COUNTS, swe),
        sweep(Mode::ManuallyFused, GPU_COUNTS, swe),
        sweep(Mode::Unfused, GPU_COUNTS, swe),
    ];
    print_weak_scaling("Figure 12c: TorchSWE", &series);
}
