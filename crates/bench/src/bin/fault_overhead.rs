//! Measures what the resilience layer (`docs/RESILIENCE.md`) costs when it
//! is **off** — the "free when disabled" half of the chaos layer's headline
//! invariant — and records the result in `BENCH_resilience.json` (schema in
//! `docs/BENCHMARKS.md`).
//!
//! The binary replays the same CG-style warm trace as `analysis_overhead`
//! (memo all-hits, the steady-state hot path) in three regimes:
//!
//! * **disabled** — no `FaultPlan` configured: the exact code the layer must
//!   not slow down. Compared against the `analysis_overhead/warm` baseline,
//!   which measured this same path before/without the chaos plumbing.
//! * **armed** — a plan is configured at rate 0.0: every launch pays the
//!   fingerprint-keyed fault-decision hash but nothing ever fires.
//! * **saturated** — rate 1.0 with recovery on: a correctness smoke, not a
//!   timing one; asserts faults were injected, everything was retried, and
//!   nothing abandoned, and records the per-iteration counters.
//!
//! `--check` re-measures the disabled path and fails if its ns/task exceeds
//! the recorded `analysis_overhead/warm` baseline by more than the tolerance
//! (default 2%). Wall-clock gates are machine-sensitive: regenerate
//! `BENCH_analysis_overhead.json` on the same machine first (CI's `faults`
//! job does), or raise `FAULT_OVERHEAD_TOLERANCE`.
//!
//! ```sh
//! cargo run --release --bin fault_overhead            # rewrite BENCH_resilience.json
//! cargo run --release --bin fault_overhead -- --check # CI regression gate
//! ```

use std::time::Instant;

use bench::JsonValue;
use diffuse::{
    Context, DiffuseConfig, FaultPlan, RecoveryPolicy, StoreHandle, TaskSignature,
};
use ir::{Partition, PartitionId};
use kernel::{BufferId, BufferRole, KernelModule, LoopBuilder, TaskKind};
use machine::MachineConfig;

/// Elements per store (simulation-only: sizes only feed the cost model).
const N: u64 = 1 << 20;
/// Simulated GPUs (launch-domain points).
const GPUS: usize = 8;
const TOPIC: &str = "resilience";
/// Samples per regime; the minimum is reported (robust against scheduler
/// noise, which only ever inflates a sample).
const SAMPLES: usize = 5;

/// Measurement window per sample in milliseconds (`FAULT_OVERHEAD_MS`
/// overrides). `--check` runs double-length windows for a steadier verdict.
fn measure_ms() -> u64 {
    let base = std::env::var("FAULT_OVERHEAD_MS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(120);
    if std::env::args().any(|a| a == "--check") {
        base * 2
    } else {
        base
    }
}

/// Allowed disabled-path overhead in percent over the recorded
/// `analysis_overhead/warm` baseline (`FAULT_OVERHEAD_TOLERANCE` overrides).
fn tolerance_pct() -> f64 {
    std::env::var("FAULT_OVERHEAD_TOLERANCE")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(2.0)
}

struct Kinds {
    add: TaskKind,
    scale: TaskKind,
}

/// Length of the elementwise window — long enough that per-launch costs
/// (where the fault hooks live) dominate per-window costs.
const CHAIN: usize = 24;

struct Stores {
    p: StoreHandle,
    chain: Vec<StoreHandle>,
    block: PartitionId,
}

fn register_kinds(ctx: &Context) -> Kinds {
    let lib = ctx.register_library("chaostrace");
    let add = lib.register("add", TaskSignature::new().read().read().write(), |_args| {
        let mut m = KernelModule::new(3);
        m.set_role(BufferId(2), BufferRole::Output);
        let mut b = LoopBuilder::new("add", BufferId(2));
        let (x, y) = (b.load(BufferId(0)), b.load(BufferId(1)));
        let s = b.add(x, y);
        b.store(BufferId(2), s);
        m.push_loop(b.finish());
        m
    });
    let scale = lib.register("scale", TaskSignature::new().read().write().scalars(1), |_args| {
        let mut m = KernelModule::new(2);
        m.set_role(BufferId(1), BufferRole::Output);
        let mut b = LoopBuilder::new("scale", BufferId(1));
        let x = b.load(BufferId(0));
        let a = b.param(0);
        let v = b.mul(x, a);
        b.store(BufferId(1), v);
        m.push_loop(b.finish());
        m
    });
    Kinds { add, scale }
}

fn make_stores(ctx: &Context) -> Stores {
    Stores {
        p: ctx.create_store(vec![N], "p"),
        chain: (0..=CHAIN)
            .map(|i| ctx.create_store(vec![N], &format!("c{i}")))
            .collect(),
        block: PartitionId::intern(&Partition::block(vec![N.div_ceil(GPUS as u64)])),
    }
}

/// A context over the warm trace with the given fault plan (`None` clears
/// the `DIFFUSE_FAULTS` environment default so "disabled" really is).
fn context_with(plan: Option<FaultPlan>) -> (Context, Kinds, Stores) {
    let mut config = DiffuseConfig::fused(MachineConfig::with_gpus(GPUS))
        .simulation_only()
        .with_window(32, 70)
        .with_recovery(RecoveryPolicy::default());
    config.fault_plan = plan;
    let ctx = Context::new(config);
    let kinds = register_kinds(&ctx);
    let stores = make_stores(&ctx);
    (ctx, kinds, stores)
}

/// One warm iteration: a fused elementwise chain plus a scale tail — CHAIN+1
/// tasks, one window shape, all memo hits after the first pass.
fn run_iteration(ctx: &Context, kinds: &Kinds, st: &Stores) -> u64 {
    for i in 0..CHAIN {
        ctx.task(kinds.add)
            .name("chain")
            .read(&st.chain[i], st.block)
            .read(&st.p, st.block)
            .write(&st.chain[i + 1], st.block)
            .launch();
    }
    ctx.task(kinds.scale)
        .name("scale_tail")
        .read(&st.chain[CHAIN], st.block)
        .write(&st.chain[0], st.block)
        .scalar(0.5)
        .launch();
    ctx.flush();
    CHAIN as u64 + 1
}

/// Warm ns/task under the given plan: memo populated, min over `SAMPLES`
/// timed windows.
fn measure_warm(plan: Option<FaultPlan>) -> f64 {
    let expect_faults = plan.as_ref().is_some_and(|p| p.rate() > 0.0);
    let (ctx, kinds, stores) = context_with(plan);
    for _ in 0..3 {
        run_iteration(&ctx, &kinds, &stores);
    }
    let mut best = f64::INFINITY;
    let budget = std::time::Duration::from_millis(measure_ms());
    for _ in 0..SAMPLES {
        let before = ctx.stats();
        let mut tasks = 0u64;
        let t0 = Instant::now();
        while t0.elapsed() < budget || tasks == 0 {
            tasks += run_iteration(&ctx, &kinds, &stores);
        }
        let elapsed_ns = t0.elapsed().as_nanos() as f64;
        let delta = ctx.stats().since(&before);
        assert_eq!(delta.memo_misses, 0, "warm path must be all hits");
        assert_eq!(
            delta.faults_injected > 0,
            expect_faults,
            "fault counters must match the configured plan"
        );
        best = best.min(elapsed_ns / tasks as f64);
    }
    best
}

/// Saturated-schedule smoke: every launch faults at least once, recovery
/// repairs all of it. Returns per-iteration (faults, retries, degraded).
fn saturated_counters() -> (f64, f64, f64) {
    let (ctx, kinds, stores) = context_with(Some(FaultPlan::new(2024, 1.0)));
    let mut iters = 0u64;
    for _ in 0..8 {
        run_iteration(&ctx, &kinds, &stores);
        iters += 1;
    }
    let stats = ctx.stats();
    assert!(stats.faults_injected > 0, "rate 1.0 must inject");
    assert!(stats.retries > 0, "recovery must retry");
    assert_eq!(stats.abandoned_launches, 0, "recovery must not abandon");
    assert!(stats.recovery_sim_time > 0.0, "recovery is priced");
    assert!(ctx.take_failures().is_empty(), "recovery must not fail launches");
    (
        stats.faults_injected as f64 / iters as f64,
        stats.retries as f64 / iters as f64,
        stats.degraded_launches as f64 / iters as f64,
    )
}

fn main() {
    let check = std::env::args().any(|a| a == "--check");
    println!("=== Resilience overhead: warm ns/task with the chaos layer off ===");
    bench::print_execution_axes();
    println!(
        "({} simulated GPUs, {} elements/store, {}x{} ms windows, simulation-only)\n",
        GPUS,
        N,
        SAMPLES,
        measure_ms()
    );

    let disabled = measure_warm(None);
    let armed = measure_warm(Some(FaultPlan::new(1, 0.0)));
    let (faults_per_iter, retries_per_iter, degraded_per_iter) = saturated_counters();

    let baseline_path = "BENCH_analysis_overhead.json";
    let baseline = std::fs::read_to_string(baseline_path)
        .unwrap_or_else(|e| panic!("needs a recorded {baseline_path}: {e}"));
    let base_warm = bench::parse_metric(&baseline, "analysis_overhead/warm", "ns_per_task")
        .unwrap_or_else(|| panic!("no analysis_overhead/warm entry in {baseline_path}"));
    let overhead_pct = (disabled / base_warm - 1.0) * 100.0;

    println!("{:<28}{:>14.0} ns/task", "disabled (no plan)", disabled);
    println!("{:<28}{:>14.0} ns/task", "armed (rate 0.0)", armed);
    println!("{:<28}{:>14.0} ns/task", "analysis_overhead/warm", base_warm);
    println!("{:<28}{:>+13.2}%", "disabled overhead", overhead_pct);
    println!(
        "{:<28}{:>10.1} faults, {:.1} retries, {:.1} degraded / iteration\n",
        "saturated (rate 1.0)", faults_per_iter, retries_per_iter, degraded_per_iter
    );

    if check {
        let tolerance = tolerance_pct();
        println!(
            "baseline {base_warm:.0} ns/task, disabled {disabled:.0} ns/task, \
             overhead {overhead_pct:+.2}% (tolerance {tolerance}%) — {}",
            if overhead_pct > tolerance { "REGRESSED" } else { "ok" }
        );
        assert!(
            overhead_pct <= tolerance,
            "the disabled chaos layer costs {overhead_pct:.2}% > {tolerance}% over \
             {baseline_path}; regenerate the baseline on this machine \
             (`cargo run --release --bin analysis_overhead`) if hardware changed, \
             or raise FAULT_OVERHEAD_TOLERANCE for the migration"
        );
        println!("\ncheck passed: disabled-path overhead within {tolerance}%.");
    } else {
        let lines = vec![
            bench::json_line(
                "resilience/disabled",
                &[("ns_per_task", JsonValue::Num(disabled))],
            ),
            bench::json_line("resilience/armed", &[("ns_per_task", JsonValue::Num(armed))]),
            bench::json_line(
                "resilience/overhead",
                &[("pct_vs_analysis_warm", JsonValue::Num(overhead_pct))],
            ),
            bench::json_line(
                "resilience/saturated",
                &[
                    ("faults_per_iter", JsonValue::Num(faults_per_iter)),
                    ("retries_per_iter", JsonValue::Num(retries_per_iter)),
                    ("degraded_per_iter", JsonValue::Num(degraded_per_iter)),
                ],
            ),
        ];
        let path = bench::write_bench_file(TOPIC, &lines);
        println!("recorded {path}");
    }
}
