//! Scrapes the vendored criterion stub's report lines into a `BENCH_*.json`
//! trajectory (docs/BENCHMARKS.md), closing the ROADMAP item that previously
//! left the analysis benches unrecorded.
//!
//! The stub prints one deterministic line per benchmark
//! (`name    time:  14.2 µs/iter  (...)`); pipe any bench run through this
//! binary with a topic name:
//!
//! ```sh
//! cargo bench --bench fusion_benches | cargo run --release --bin bench_scrape -- fusion
//! # wrote BENCH_fusion.json
//! ```
//!
//! Every scraped entry is recorded as
//! `{"bench":"<name>","ns_per_iter":<ns>,"date":"YYYY-MM-DD"}` via the shared
//! helpers in `crates/bench/src/lib.rs` — the same schema and writer the
//! dedicated recorder binaries use.

use std::io::Read;

use bench::JsonValue;

fn main() {
    let topic = std::env::args()
        .nth(1)
        .unwrap_or_else(|| panic!("usage: bench_scrape <topic>  (reads criterion output on stdin)"));
    let mut input = String::new();
    std::io::stdin()
        .read_to_string(&mut input)
        .expect("cannot read stdin");
    let entries = bench::scrape_criterion(&input);
    assert!(
        !entries.is_empty(),
        "no criterion report lines found on stdin; pipe `cargo bench` output through this binary"
    );
    let lines: Vec<String> = entries
        .iter()
        .map(|(name, ns)| bench::json_line(name, &[("ns_per_iter", JsonValue::Num(*ns))]))
        .collect();
    let path = bench::write_bench_file(&topic, &lines);
    println!("wrote {path} ({} entries)", entries.len());
}
