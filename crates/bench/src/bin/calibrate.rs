//! Fits the per-backend compile-time calibration from measured wall-clock
//! and records it in `BENCH_compile_calibration.json` (schema in
//! `docs/BENCHMARKS.md`).
//!
//! The simulated JIT surcharge of `CompileTimeModel` used to be asserted
//! (interp ×1.0, closure ×1.25); this binary replaces the assertion with a
//! measurement. For every backend it times `KernelBackend::compile` across a
//! grid of module sizes that varies ops-per-stage and stage count
//! **independently**, fits the linear model
//!
//! ```text
//! compile_ns ≈ base_ns + per_op_ns · total_ops + per_stage_ns · num_stages
//! ```
//!
//! by least squares (`bench::fit_affine2`), clamps noise-negative
//! coefficients to zero, and writes one coefficient line per backend plus
//! one `<backend>_vs_interp` ratio line (predicted compile time at a
//! reference module size, relative to the interpreter). `kernel::cost`
//! embeds the file at build time: `CompileTimeModel::calibrated(backend)`
//! scales the Figure 13 anchor by the measured coefficient ratios, so the
//! simulated surcharge is fitted, not guessed. Rebuild after re-recording.
//!
//! Absolute nanoseconds are machine-dependent; the ratios are not (they
//! compare two code paths on the same host), so `--check` re-measures and
//! fails on a >30% drift of any ratio against the recorded baseline
//! (`CALIBRATE_TOLERANCE` overrides; `CALIBRATE_MS` scales the per-point
//! measurement window).
//!
//! ```sh
//! cargo run --release --bin calibrate            # rewrite the baseline
//! cargo run --release --bin calibrate -- --check # CI drift gate
//! ```

use std::time::Instant;

use kernel::{BackendKind, BufferId, BufferRole, KernelModule, LoopBuilder};

/// Path of the recorded calibration, relative to the workspace root.
const BENCH_FILE: &str = "BENCH_compile_calibration.json";

/// The calibrated backends, in recording order. The interpreter is the
/// reference the ratios are taken against.
const BACKENDS: [BackendKind; 3] = [BackendKind::Interp, BackendKind::Closure, BackendKind::Simd];

/// Stage counts of the measurement grid.
const STAGES: [usize; 5] = [1, 2, 4, 8, 16];

/// Arithmetic chain lengths per stage of the measurement grid.
const CHAIN: [usize; 3] = [2, 8, 24];

/// Reference module size the drift-gated ratios are evaluated at (a fused
/// window of realistic width: 16 stages, 8 chained ops each).
const REF_STAGES: usize = 16;
const REF_CHAIN: usize = 8;

/// Per-grid-point measurement window in milliseconds (`CALIBRATE_MS`
/// overrides). `--check` runs double-length windows, like the other gates.
fn measure_ms() -> u64 {
    let base = std::env::var("CALIBRATE_MS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(15);
    if std::env::args().any(|a| a == "--check") {
        base * 2
    } else {
        base
    }
}

/// Allowed ratio drift in percent before `--check` fails
/// (`CALIBRATE_TOLERANCE` overrides).
fn tolerance_pct() -> f64 {
    std::env::var("CALIBRATE_TOLERANCE")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(30.0)
}

/// A module of `stages` identical loop stages, each an SSA chain of `chain`
/// arithmetic ops — the vectorizable shape every backend lowers fully, so
/// the measured cost covers the whole lowering path.
fn module(stages: usize, chain: usize) -> KernelModule {
    let mut m = KernelModule::new(2);
    m.set_role(BufferId(1), BufferRole::Output);
    for s in 0..stages {
        let mut lb = LoopBuilder::new(format!("chain{s}"), BufferId(0));
        let x = lb.load(BufferId(0));
        let c = lb.constant(1.0 + s as f64 * 0.125);
        let mut acc = x;
        for i in 0..chain {
            acc = if i % 2 == 0 { lb.mul(acc, c) } else { lb.add(acc, x) };
        }
        lb.store(BufferId(1), acc);
        m.push_loop(lb.finish());
    }
    m
}

/// Mean wall-clock nanoseconds of one compilation of `m` under `kind`.
fn time_compile(kind: BackendKind, m: &KernelModule) -> f64 {
    let backend = kind.backend();
    // Warm up (page in code, resolve one-time lazies).
    let _ = backend.compile(m).expect("compile failed");
    let budget = std::time::Duration::from_millis(measure_ms());
    let start = Instant::now();
    let mut iters = 0u64;
    while start.elapsed() < budget {
        let _ = backend.compile(m).expect("compile failed");
        iters += 1;
    }
    start.elapsed().as_nanos() as f64 / iters as f64
}

/// One backend's fitted host model plus its fit quality.
struct Fitted {
    kind: BackendKind,
    beta: [f64; 3], // [base_ns, per_op_ns, per_stage_ns]
    r2: f64,
}

impl Fitted {
    fn predict_ns(&self, total_ops: usize, num_stages: usize) -> f64 {
        self.beta[0] + self.beta[1] * total_ops as f64 + self.beta[2] * num_stages as f64
    }
}

fn fit_backend(kind: BackendKind) -> Fitted {
    let mut samples = Vec::new();
    for &stages in &STAGES {
        for &chain in &CHAIN {
            let m = module(stages, chain);
            let ns = time_compile(kind, &m);
            samples.push((m.total_ops() as f64, m.num_stages() as f64, ns));
        }
    }
    let raw = bench::fit_affine2(&samples)
        .unwrap_or_else(|| panic!("degenerate calibration fit for {}", kind.id()));
    let beta = bench::clamp_coefficients(raw, 0.0);
    let r2 = bench::fit_r2(&samples, &raw);
    Fitted { kind, beta, r2 }
}

/// The reference-module compile-cost ratio of a backend over the
/// interpreter — the machine-portable quantity the drift gate runs on.
fn ratio_vs_interp(own: &Fitted, interp: &Fitted) -> f64 {
    let m = module(REF_STAGES, REF_CHAIN);
    let (ops, stages) = (m.total_ops(), m.num_stages());
    own.predict_ns(ops, stages) / interp.predict_ns(ops, stages).max(1e-9)
}

fn json_lines(fits: &[Fitted], ratios: &[(&str, f64)]) -> Vec<String> {
    use bench::JsonValue;
    let mut out = Vec::new();
    for f in fits {
        out.push(bench::json_line(
            &format!("compile_calibration/{}", f.kind.id()),
            &[
                ("backend", JsonValue::Str(f.kind.id().to_string())),
                ("base_ns", JsonValue::Num(f.beta[0])),
                ("per_op_ns", JsonValue::Num(f.beta[1])),
                ("per_stage_ns", JsonValue::Num(f.beta[2])),
                ("r2", JsonValue::Num(f.r2)),
            ],
        ));
    }
    for (name, ratio) in ratios {
        out.push(bench::json_line(
            &format!("compile_calibration/{name}"),
            &[("ratio", JsonValue::Num(*ratio))],
        ));
    }
    out
}

fn main() {
    let check = std::env::args().any(|a| a == "--check");
    println!("=== Compile-time calibration: fitted per-backend coefficients ===");
    println!(
        "(grid: stages {STAGES:?} x chain {CHAIN:?}, {} ms/point)\n",
        measure_ms()
    );
    println!(
        "{:<10}{:>12}{:>12}{:>14}{:>8}",
        "Backend", "base ns", "per-op ns", "per-stage ns", "R2"
    );
    let fits: Vec<Fitted> = BACKENDS.iter().map(|&k| fit_backend(k)).collect();
    for f in &fits {
        println!(
            "{:<10}{:>12.1}{:>12.2}{:>14.1}{:>8.3}",
            f.kind.id(),
            f.beta[0],
            f.beta[1],
            f.beta[2],
            f.r2
        );
    }
    let interp = &fits[0];
    let ratios: Vec<(&str, f64)> = fits[1..]
        .iter()
        .map(|f| {
            let name: &str = match f.kind {
                BackendKind::Closure => "closure_vs_interp",
                BackendKind::Simd => "simd_vs_interp",
                BackendKind::Interp => unreachable!(),
            };
            (name, ratio_vs_interp(f, interp))
        })
        .collect();
    println!();
    for (name, r) in &ratios {
        println!("{name}: {r:.2}x the interpreter's compile cost at the reference module");
        // Lowering always does strictly more work than the interpreter's
        // clone-and-wrap; a ratio below 1 means the measurement is broken.
        assert!(*r > 1.0, "{name}: fitted ratio {r:.3} is not above 1.0");
    }

    if check {
        let baseline = std::fs::read_to_string(BENCH_FILE)
            .unwrap_or_else(|e| panic!("--check needs a checked-in {BENCH_FILE}: {e}"));
        let tolerance = tolerance_pct();
        let mut failed = false;
        for (name, current) in &ratios {
            let key = format!("compile_calibration/{name}");
            let Some(base) = bench::parse_metric(&baseline, &key, "ratio") else {
                println!("warning: no baseline entry for {key}; skipping");
                continue;
            };
            let drift_pct = (current - base).abs() / base * 100.0;
            let verdict = if drift_pct > tolerance {
                failed = true;
                "DRIFTED"
            } else {
                "ok"
            };
            println!(
                "{key}: baseline {base:.2}x, current {current:.2}x, \
                 drift {drift_pct:.1}% — {verdict}"
            );
        }
        assert!(
            !failed,
            "compile-cost ratios drifted >{tolerance}% vs {BENCH_FILE}; re-record \
             the baseline (`cargo run --release --bin calibrate` + rebuild) if \
             the lowering legitimately changed, or raise CALIBRATE_TOLERANCE \
             for a hardware migration"
        );
        println!("\ncheck passed: ratios within {tolerance}% of the recorded baseline.");
    } else {
        let path = bench::write_bench_file("compile_calibration", &json_lines(&fits, &ratios));
        println!("recorded {path} — rebuild so kernel::cost embeds the new coefficients");
    }
}
