//! Regenerates Figure 11: CG and BiCGSTAB weak scaling against PETSc.

use apps::Mode;
use bench::{print_weak_scaling, sweep, GPU_COUNTS};

fn main() {
    bench::print_execution_axes();
    let iters = 10;
    let per_gpu = 1u64 << 19;
    let cg = |mode, gpus| apps::cg::run(mode, gpus, per_gpu, iters, false);
    let series = vec![
        sweep(Mode::Fused, GPU_COUNTS, cg),
        sweep(Mode::Petsc, GPU_COUNTS, cg),
        sweep(Mode::ManuallyFused, GPU_COUNTS, cg),
        sweep(Mode::Unfused, GPU_COUNTS, cg),
    ];
    print_weak_scaling("Figure 11a: Conjugate Gradient", &series);

    let bi = |mode, gpus| apps::bicgstab::run(mode, gpus, per_gpu, iters, false);
    let series = vec![
        sweep(Mode::Fused, GPU_COUNTS, bi),
        sweep(Mode::Petsc, GPU_COUNTS, bi),
        sweep(Mode::Unfused, GPU_COUNTS, bi),
    ];
    print_weak_scaling("Figure 11b: BiCGSTAB", &series);
}
