//! Headline numbers of Section 7: geometric-mean speedup of Diffuse over the
//! unfused baselines, over PETSc, and over the hand-optimized variants.

use apps::Mode;
use bench::{geomean, GPU_COUNTS_SHORT};

/// `(name, runner, supports_fusion_toggle, supports_memo_toggle)` for one app.
type AppEntry = (
    &'static str,
    Box<dyn Fn(Mode, usize) -> apps::BenchmarkResult>,
    bool,
    bool,
);

fn main() {
    bench::print_execution_axes();
    let iters = 10;
    let mut vs_unfused = Vec::new();
    let mut vs_petsc = Vec::new();
    let mut vs_manual = Vec::new();

    let apps_list: Vec<AppEntry> = vec![
        ("Black-Scholes", Box::new(move |m, g| apps::black_scholes::run(m, g, 1 << 27, iters, false)), false, false),
        ("Jacobi", Box::new(move |m, g| apps::jacobi::run(m, g, 1u64 << 32, iters, false)), false, false),
        ("CG", Box::new(move |m, g| apps::cg::run(m, g, 1 << 27, iters, false)), true, true),
        ("BiCGSTAB", Box::new(move |m, g| apps::bicgstab::run(m, g, 1 << 27, iters, false)), true, false),
        ("GMG", Box::new(move |m, g| apps::gmg::run(m, g, 1 << 26, iters, false)), false, false),
        ("CFD", Box::new(move |m, g| apps::cfd::run(m, g, 1 << 18, iters, false)), false, false),
        ("TorchSWE", Box::new(move |m, g| apps::torchswe::run(m, g, 1 << 18, iters, false)), false, true),
    ];

    println!("=== Section 7 headline speedups (geo-mean across GPU counts {GPU_COUNTS_SHORT:?}) ===");
    for (name, run, has_petsc, has_manual) in &apps_list {
        let mut per_app = Vec::new();
        for &g in GPU_COUNTS_SHORT {
            let fused = run(Mode::Fused, g);
            let unfused = run(Mode::Unfused, g);
            let s = fused.throughput / unfused.throughput.max(1e-12);
            per_app.push(s);
            vs_unfused.push(s);
            if *has_petsc {
                let petsc = run(Mode::Petsc, g);
                vs_petsc.push(fused.throughput / petsc.throughput.max(1e-12));
            }
            if *has_manual {
                let manual = run(Mode::ManuallyFused, g);
                vs_manual.push(fused.throughput / manual.throughput.max(1e-12));
            }
        }
        println!("{name:<14} speedup over unfused: {:.2}x (geo-mean)", geomean(&per_app));
    }
    println!();
    println!("Overall geo-mean speedup over unfused:        {:.2}x (paper: 1.86x)", geomean(&vs_unfused));
    println!("Geo-mean speedup over PETSc (CG, BiCGSTAB):   {:.2}x (paper: ~1.4x)", geomean(&vs_petsc));
    println!("Geo-mean speedup over hand-optimized code:    {:.2}x (paper: 1.23x)", geomean(&vs_manual));
}
