//! Measures the wall-clock cost of Diffuse's dynamic trace analysis per
//! submitted task — the runtime-overhead story of the paper's §5.2/Figure 7 —
//! and records the trajectory in `BENCH_analysis_overhead.json` (schema in
//! `docs/BENCHMARKS.md`).
//!
//! The binary replays a CG-style trace (two alternating fused vector windows
//! over persistent stores, one with a reduction tail) through a
//! simulation-only `diffuse::Context` and reports nanoseconds of host time
//! per task for two regimes:
//!
//! * **cold** — every window is a memoization miss: the analysis runs the
//!   fusible-prefix segmentation, canonicalizes the window, composes and
//!   optimizes the fused kernel and compiles it (fresh context per sample).
//! * **warm** — every window is a memoization hit: the fingerprint-first
//!   probe replays the memoized decision and launches the cached artifact;
//!   no canonical key is built and no compilation happens.
//!
//! The machine-independent quantity is the **cold/warm ratio** — how much of
//! the analysis cost memoization amortizes away. `--check` re-measures and
//! fails if the ratio drops below the hard floor of 5× or regresses more
//! than the tolerance against the checked-in baseline.
//!
//! A third regime measures the footprint analyzer of `docs/ANALYZE.md`:
//! **inferred** replays the same all-hit warm trace under
//! `AnalyzeMode::Inferred`, so every submission additionally pays the
//! memoized effective-signature probe. The analyzer is memoized per launch
//! key exactly like the window analysis, so its steady-state cost must be
//! one hash probe; `--check` fails if the inferred warm path costs more
//! than `ANALYZE_OVERHEAD_TOLERANCE` percent (default 2%) over the declared
//! warm path measured in the same process.
//!
//! ```sh
//! cargo run --release --bin analysis_overhead            # rewrite the baseline
//! cargo run --release --bin analysis_overhead -- --check # CI regression gate
//! ```

use std::time::Instant;

use bench::JsonValue;
use diffuse::{AnalyzeMode, Context, DiffuseConfig, StoreHandle, TaskSignature};
use ir::{Partition, PartitionId};
use kernel::{BufferId, BufferRole, KernelModule, LoopBuilder, TaskKind};
use machine::MachineConfig;

/// Elements per store (simulation-only: sizes only feed the cost model).
const N: u64 = 1 << 20;
/// Simulated GPUs (launch-domain points).
const GPUS: usize = 8;
/// Warm-path hits the gate must never fall below, as a multiple of the cold
/// path's per-task cost.
const HARD_FLOOR: f64 = 5.0;
/// Path of the recorded trajectory, relative to the workspace root.
const TOPIC: &str = "analysis_overhead";

/// Measurement window in milliseconds (`ANALYSIS_OVERHEAD_MS` overrides).
/// `--check` runs double-length windows for a steadier verdict.
fn measure_ms() -> u64 {
    let base = std::env::var("ANALYSIS_OVERHEAD_MS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(200);
    if std::env::args().any(|a| a == "--check") {
        base * 2
    } else {
        base
    }
}

/// Allowed ratio regression in percent before `--check` fails
/// (`ANALYSIS_OVERHEAD_TOLERANCE` overrides).
fn tolerance_pct() -> f64 {
    std::env::var("ANALYSIS_OVERHEAD_TOLERANCE")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(30.0)
}

/// Allowed warm-path overhead of `AnalyzeMode::Inferred` in percent over the
/// declared warm path (`ANALYZE_OVERHEAD_TOLERANCE` overrides).
fn analyze_tolerance_pct() -> f64 {
    std::env::var("ANALYZE_OVERHEAD_TOLERANCE")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(2.0)
}

/// The registered task kinds of the replayed trace.
struct Kinds {
    add: TaskKind,
    scale: TaskKind,
    dot: TaskKind,
    /// An add with a declared read-write scratch argument its kernel never
    /// touches — launched once (outside timed windows) in the inferred leg
    /// to prove the analyzer is actually active (`privileges_tightened`).
    phantom: TaskKind,
}

/// Length of the elementwise-chain window (models the long fused vector
/// sequences the adaptive window accumulates in steady state).
const CHAIN: usize = 24;

/// The persistent stores the trace runs over (CG reuses its vectors across
/// iterations, so successive windows are isomorphic and the warm path is
/// all hits).
struct Stores {
    x: StoreHandle,
    p: StoreHandle,
    t: StoreHandle,
    q: StoreHandle,
    s: StoreHandle,
    rs: StoreHandle,
    chain: Vec<StoreHandle>,
    block: PartitionId,
    replicate: PartitionId,
}

fn register_kinds(ctx: &Context) -> Kinds {
    let lib = ctx.register_library("cgtrace");
    let add = lib.register("add", TaskSignature::new().read().read().write(), |_args| {
        let mut m = KernelModule::new(3);
        m.set_role(BufferId(2), BufferRole::Output);
        let mut b = LoopBuilder::new("add", BufferId(2));
        let (x, y) = (b.load(BufferId(0)), b.load(BufferId(1)));
        let s = b.add(x, y);
        b.store(BufferId(2), s);
        m.push_loop(b.finish());
        m
    });
    let scale = lib.register("scale", TaskSignature::new().read().write().scalars(1), |_args| {
        let mut m = KernelModule::new(2);
        m.set_role(BufferId(1), BufferRole::Output);
        let mut b = LoopBuilder::new("scale", BufferId(1));
        let x = b.load(BufferId(0));
        let a = b.param(0);
        let v = b.mul(x, a);
        b.store(BufferId(1), v);
        m.push_loop(b.finish());
        m
    });
    let dot = lib.register("dot", TaskSignature::new().read().reduce(), |_args| {
        let mut m = KernelModule::new(2);
        m.set_role(BufferId(1), BufferRole::Reduction);
        let mut b = LoopBuilder::new("dot", BufferId(0));
        let x = b.load(BufferId(0));
        let xx = b.mul(x, x);
        b.reduce(BufferId(1), kernel::ReduceOp::Sum, xx);
        m.push_loop(b.finish());
        m
    });
    let phantom = lib.register(
        "phantom_add",
        TaskSignature::new().read().read().write().read_write(),
        |_args| {
            let mut m = KernelModule::new(4);
            m.set_role(BufferId(2), BufferRole::Output);
            let mut b = LoopBuilder::new("phantom_add", BufferId(2));
            let (x, y) = (b.load(BufferId(0)), b.load(BufferId(1)));
            let s = b.add(x, y);
            b.store(BufferId(2), s);
            m.push_loop(b.finish());
            m
        },
    );
    Kinds { add, scale, dot, phantom }
}

fn make_stores(ctx: &Context) -> Stores {
    Stores {
        x: ctx.create_store(vec![N], "x"),
        p: ctx.create_store(vec![N], "p"),
        t: ctx.create_store(vec![N], "t"),
        q: ctx.create_store(vec![N], "q"),
        s: ctx.create_store(vec![N], "s"),
        rs: ctx.create_store(vec![1], "rs"),
        chain: (0..=CHAIN)
            .map(|i| ctx.create_store(vec![N], &format!("c{i}")))
            .collect(),
        block: PartitionId::intern(&Partition::block(vec![N.div_ceil(GPUS as u64)])),
        replicate: PartitionId::intern(&Partition::Replicate),
    }
}

fn fresh_context(mode: AnalyzeMode) -> (Context, Kinds, Stores) {
    // Buffer the whole chain window before analyzing (the adaptive policy
    // would get there on its own; pinning it keeps samples uniform).
    let config = DiffuseConfig::fused(MachineConfig::with_gpus(GPUS))
        .simulation_only()
        .with_window(32, 70)
        .with_analyze(mode);
    let ctx = Context::new(config);
    let kinds = register_kinds(&ctx);
    let stores = make_stores(&ctx);
    (ctx, kinds, stores)
}

/// One "iteration" of the CG-style trace: a 4-task vector window with a
/// reduction tail plus a 3-task Jacobi-style correction window — 7 tasks,
/// two distinct window shapes, flushed like a solver would flush per
/// iteration. Returns the number of tasks submitted.
fn run_iteration(ctx: &Context, kinds: &Kinds, st: &Stores) -> u64 {
    let ew = |name: &str, a: &StoreHandle, b: &StoreHandle, o: &StoreHandle| {
        ctx.task(kinds.add)
            .name(name)
            .read(a, st.block)
            .read(b, st.block)
            .write(o, st.block)
            .launch();
    };
    // Window 1: t = x + p; q = alpha * t; s = q + x; rs += s . s
    ew("add_xp", &st.x, &st.p, &st.t);
    ctx.task(kinds.scale)
        .name("scale_t")
        .read(&st.t, st.block)
        .write(&st.q, st.block)
        .scalar(1.0e-3)
        .launch();
    ew("add_qx", &st.q, &st.x, &st.s);
    ctx.task(kinds.dot)
        .name("dot_ss")
        .read(&st.s, st.block)
        .reduce(&st.rs, st.replicate, ir::ReductionOp::Sum)
        .launch();
    ctx.flush();
    // Window 2: t = p + s; q = beta * t; x' = q + p (Jacobi-style tail).
    ew("add_ps", &st.p, &st.s, &st.t);
    ctx.task(kinds.scale)
        .name("scale_t2")
        .read(&st.t, st.block)
        .write(&st.q, st.block)
        .scalar(0.5)
        .launch();
    ew("add_qp", &st.q, &st.p, &st.x);
    ctx.flush();
    // Window 3: a long fully-fusible elementwise chain, the shape the
    // adaptive window converges to on elementwise-heavy traces.
    for i in 0..CHAIN {
        ctx.task(kinds.add)
            .name("chain")
            .read(&st.chain[i], st.block)
            .read(&st.p, st.block)
            .write(&st.chain[i + 1], st.block)
            .launch();
    }
    ctx.flush();
    7 + CHAIN as u64
}

/// Cold path: a fresh context per sample, timing the first (all-miss)
/// iteration only. Returns ns per task.
fn measure_cold() -> f64 {
    let budget = std::time::Duration::from_millis(measure_ms());
    let mut elapsed_ns = 0.0f64;
    let mut tasks = 0u64;
    let wall = Instant::now();
    while wall.elapsed() < budget || tasks == 0 {
        let (ctx, kinds, stores) = fresh_context(AnalyzeMode::Declared);
        let t0 = Instant::now();
        tasks += run_iteration(&ctx, &kinds, &stores);
        elapsed_ns += t0.elapsed().as_nanos() as f64;
        let stats = ctx.stats();
        assert_eq!(stats.memo_hits, 0, "cold path must be all misses");
        assert!(stats.memo_misses >= 3);
    }
    elapsed_ns / tasks as f64
}

/// Warm path: one context, memo populated, timing all-hit iterations.
/// Returns ns per task.
fn measure_warm(mode: AnalyzeMode) -> f64 {
    let (ctx, kinds, stores) = fresh_context(mode);
    // Populate the memo (and let the adaptive window settle).
    for _ in 0..3 {
        run_iteration(&ctx, &kinds, &stores);
    }
    if mode == AnalyzeMode::Inferred {
        // Prove the analyzer is active in this leg: the phantom scratch must
        // be tightened. Runs once, outside the timed windows below.
        ctx.task(kinds.phantom)
            .name("phantom_probe")
            .read(&stores.x, stores.block)
            .read(&stores.p, stores.block)
            .write(&stores.t, stores.block)
            .read_write(&stores.q, stores.block)
            .launch();
        ctx.flush();
        assert!(
            ctx.stats().privileges_tightened > 0,
            "the inferred leg must actually tighten the phantom scratch"
        );
    }
    let before = ctx.stats();
    let budget = std::time::Duration::from_millis(measure_ms());
    let mut tasks = 0u64;
    let t0 = Instant::now();
    while t0.elapsed() < budget || tasks == 0 {
        tasks += run_iteration(&ctx, &kinds, &stores);
    }
    let elapsed_ns = t0.elapsed().as_nanos() as f64;
    let delta = ctx.stats().since(&before);
    assert_eq!(delta.memo_misses, 0, "warm path must be all hits");
    assert_eq!(delta.compilations, 0, "warm path must not compile");
    assert!(delta.memo_hits >= 2);
    elapsed_ns / tasks as f64
}

fn main() {
    let check = std::env::args().any(|a| a == "--check");
    println!("=== Analysis overhead: memo-miss (cold) vs memo-hit (warm) ns/task ===");
    bench::print_execution_axes();
    println!(
        "({} simulated GPUs, {} elements/store, {} ms windows, simulation-only)\n",
        GPUS,
        N,
        measure_ms()
    );
    let cold = measure_cold();
    let warm = measure_warm(AnalyzeMode::Declared);
    let inferred = measure_warm(AnalyzeMode::Inferred);
    let ratio = cold / warm.max(1e-9);
    let analyze_pct = (inferred / warm.max(1e-9) - 1.0) * 100.0;
    println!("{:<28}{:>14.0} ns/task", "cold (all misses)", cold);
    println!("{:<28}{:>14.0} ns/task", "warm (all hits)", warm);
    println!("{:<28}{:>14.0} ns/task", "warm + analyzer (inferred)", inferred);
    println!("{:<28}{:>13.1}x", "cold/warm ratio", ratio);
    println!("{:<28}{:>+13.2}%\n", "analyzer overhead", analyze_pct);

    assert!(
        ratio >= HARD_FLOOR,
        "memoized (warm) analysis must be at least {HARD_FLOOR}x cheaper per task \
         than the miss path (cold {cold:.0} ns vs warm {warm:.0} ns = {ratio:.1}x)"
    );

    if check {
        let analyze_tolerance = analyze_tolerance_pct();
        println!(
            "analyzer: declared {warm:.0} ns/task, inferred {inferred:.0} ns/task, \
             overhead {analyze_pct:+.2}% (tolerance {analyze_tolerance}%) — {}",
            if analyze_pct > analyze_tolerance { "REGRESSED" } else { "ok" }
        );
        assert!(
            analyze_pct <= analyze_tolerance,
            "DIFFUSE_ANALYZE=inferred costs {analyze_pct:.2}% > {analyze_tolerance}% on \
             the warm path; the effective-signature probe must stay memoized per \
             launch key (docs/ANALYZE.md), or raise ANALYZE_OVERHEAD_TOLERANCE \
             for the migration"
        );
        let path = format!("BENCH_{TOPIC}.json");
        let baseline = std::fs::read_to_string(&path)
            .unwrap_or_else(|e| panic!("--check needs a checked-in {path}: {e}"));
        let base = bench::parse_metric(&baseline, "analysis_overhead/ratio", "ratio")
            .unwrap_or_else(|| panic!("no ratio entry in {path}"));
        let tolerance = tolerance_pct();
        let floor = (base * (1.0 - tolerance / 100.0)).max(HARD_FLOOR);
        println!(
            "baseline {base:.1}x, current {ratio:.1}x, floor {floor:.1}x — {}",
            if ratio < floor { "REGRESSED" } else { "ok" }
        );
        assert!(
            ratio >= floor,
            "analysis-overhead amortization regressed >{tolerance}% vs {path}; \
             re-record the baseline (`cargo run --release --bin analysis_overhead`) \
             if this run is on different hardware, or raise ANALYSIS_OVERHEAD_TOLERANCE \
             for the migration"
        );
        println!("\ncheck passed: ratio within {tolerance}% of the recorded baseline.");
    } else {
        let lines = vec![
            bench::json_line(
                "analysis_overhead/cold",
                &[("ns_per_task", JsonValue::Num(cold))],
            ),
            bench::json_line(
                "analysis_overhead/warm",
                &[("ns_per_task", JsonValue::Num(warm))],
            ),
            bench::json_line(
                "analysis_overhead/inferred",
                &[("ns_per_task", JsonValue::Num(inferred))],
            ),
            bench::json_line(
                "analysis_overhead/analyze_overhead",
                &[("pct_vs_warm", JsonValue::Num(analyze_pct))],
            ),
            bench::json_line("analysis_overhead/ratio", &[("ratio", JsonValue::Num(ratio))]),
        ];
        let path = bench::write_bench_file(TOPIC, &lines);
        println!("recorded {path}");
    }
}
