//! Regenerates Figure 13: warmup times with and without JIT compilation on
//! 8 GPUs, and the number of iterations needed to amortize compilation.

use apps::Mode;

/// `(name, runner)` for one warm-up curve.
type AppRow = (&'static str, Box<dyn Fn(Mode) -> apps::BenchmarkResult>);

fn main() {
    bench::print_execution_axes();
    let gpus = 8;
    let iters = 10;
    println!("=== Figure 13: warmup times on 8 GPUs ===");
    println!(
        "{:<14}{:>14}{:>14}{:>22}",
        "Benchmark", "Standard (s)", "Compiled (s)", "Breakeven iterations"
    );
    let rows: Vec<AppRow> = vec![
        ("Black-Scholes", Box::new(move |m| apps::black_scholes::run(m, gpus, 1 << 27, iters, false))),
        ("Jacobi", Box::new(move |m| apps::jacobi::run(m, gpus, 1u64 << 32, iters, false))),
        ("CG", Box::new(move |m| apps::cg::run(m, gpus, 1 << 27, iters, false))),
        ("BiCGSTAB", Box::new(move |m| apps::bicgstab::run(m, gpus, 1 << 27, iters, false))),
        ("GMG", Box::new(move |m| apps::gmg::run(m, gpus, 1 << 26, iters, false))),
        ("CFD", Box::new(move |m| apps::cfd::run(m, gpus, 1 << 18, iters, false))),
        ("TorchSWE", Box::new(move |m| apps::torchswe::run(m, gpus, 1 << 18, iters, false))),
    ];
    for (name, run) in rows {
        let unfused = run(Mode::Unfused);
        let fused = run(Mode::Fused);
        // Per-iteration times after warmup.
        let t_unfused = unfused.elapsed / unfused.iterations as f64;
        let t_fused = fused.elapsed / fused.iterations as f64;
        let saving = (t_unfused - t_fused).max(0.0);
        let breakeven = if saving > 0.0 && fused.compile_time > 0.0 {
            format!("{:.2}", fused.compile_time / saving)
        } else {
            "N/A".to_string()
        };
        println!(
            "{:<14}{:>14.3}{:>14.3}{:>22}",
            name,
            unfused.warmup_elapsed,
            fused.warmup_with_compile(),
            breakeven
        );
    }
}
