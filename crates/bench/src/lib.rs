//! Benchmark harness utilities shared by the figure-regeneration binaries.
//!
//! Each binary in `src/bin/` regenerates one table or figure of the paper's
//! evaluation (see DESIGN.md's per-experiment index and EXPERIMENTS.md for the
//! measured results):
//!
//! * `fig09_task_table` — tasks per iteration with/without fusion (Figure 9)
//! * `fig10_microbench` — Black-Scholes and Jacobi weak scaling (Figure 10)
//! * `fig11_solvers`    — CG and BiCGSTAB vs PETSc (Figure 11)
//! * `fig12_apps`       — GMG, CFD and TorchSWE (Figure 12)
//! * `fig13_warmup`     — warmup/compilation times and breakeven (Figure 13)
//! * `summary`          — headline geometric-mean speedups (Section 7)
//! * `ablation`         — task-fusion-only and no-memoization ablations
//! * `executor_compare` — host wall-clock of functional runs under the serial
//!   vs work-stealing runtime executor (docs/RUNTIME.md)
//!
//! The Criterion benches in `benches/` measure the *wall-clock* cost of the
//! analyses themselves (fusion constraint checking, canonicalization, kernel
//! compilation), demonstrating the scale-free property of the IR.
//!
//! # Example
//!
//! ```
//! // Headline speedups are reported as geometric means over benchmarks.
//! let speedups = [2.0, 8.0];
//! assert!((bench::geomean(&speedups) - 4.0).abs() < 1e-12);
//! ```

use apps::{BenchmarkResult, Mode};

/// The GPU counts of the paper's weak-scaling studies.
pub const GPU_COUNTS: &[usize] = &[1, 2, 4, 8, 16, 32, 64, 128];

/// Prints the process-wide execution axes (runtime executor and kernel
/// backend, as resolved from `DIFFUSE_EXECUTOR`/`DIFFUSE_BACKEND`) so every
/// recorded table states the configuration it was measured under. Simulated
/// time is invariant across both axes; this line is how a reader of two
/// pasted tables knows they are comparable.
pub fn print_execution_axes() {
    let executor = match diffuse::ExecutorKind::from_env() {
        diffuse::ExecutorKind::Serial => "serial".to_string(),
        diffuse::ExecutorKind::WorkStealing { workers: None } => "work-stealing".to_string(),
        diffuse::ExecutorKind::WorkStealing { workers: Some(n) } => {
            format!("work-stealing({n})")
        }
    };
    println!(
        "(executor: {executor}, kernel backend: {}; simulated time is invariant across both)",
        diffuse::BackendKind::from_env().id()
    );
}

/// A smaller sweep for quick checks.
pub const GPU_COUNTS_SHORT: &[usize] = &[1, 8, 32, 128];

/// Geometric mean of a slice of positive values.
pub fn geomean(values: &[f64]) -> f64 {
    if values.is_empty() {
        return 0.0;
    }
    let log_sum: f64 = values.iter().map(|v| v.max(1e-300).ln()).sum();
    (log_sum / values.len() as f64).exp()
}

/// Prints a weak-scaling series as a text table: one row per GPU count, one
/// column per mode, values are throughput in iterations per second.
pub fn print_weak_scaling(title: &str, series: &[(Mode, Vec<BenchmarkResult>)]) {
    println!("\n=== {title} (throughput, iterations/s; higher is better) ===");
    print!("{:>6}", "GPUs");
    for (mode, _) in series {
        print!("{:>16}", mode.to_string());
    }
    println!();
    let gpu_counts: Vec<usize> = series
        .first()
        .map(|(_, rs)| rs.iter().map(|r| r.gpus).collect())
        .unwrap_or_default();
    for (i, gpus) in gpu_counts.iter().enumerate() {
        print!("{gpus:>6}");
        for (_, results) in series {
            print!("{:>16.3}", results[i].throughput);
        }
        println!();
    }
    // Speedup of the first series over each other series, geometric mean.
    if let Some((first_mode, first)) = series.first() {
        for (mode, results) in series.iter().skip(1) {
            let speedups: Vec<f64> = first
                .iter()
                .zip(results)
                .map(|(f, o)| f.throughput / o.throughput.max(1e-12))
                .collect();
            println!(
                "geo-mean speedup of {first_mode} over {mode}: {:.2}x",
                geomean(&speedups)
            );
        }
    }
}

/// Runs one application across a GPU sweep in one mode.
pub fn sweep<F>(mode: Mode, gpu_counts: &[usize], mut run: F) -> (Mode, Vec<BenchmarkResult>)
where
    F: FnMut(Mode, usize) -> BenchmarkResult,
{
    let results = gpu_counts.iter().map(|&g| run(mode, g)).collect();
    (mode, results)
}

// ---------------------------------------------------------------------------
// Shared `BENCH_*.json` trajectory recording (docs/BENCHMARKS.md).
//
// Every recorder — the dedicated binaries (`kernel_backends`,
// `analysis_overhead`) and the criterion-output scraper (`bench_scrape`) —
// goes through these helpers, so the JSON-lines schema and date stamping
// live in exactly one place.
// ---------------------------------------------------------------------------

/// One field of a recorded benchmark entry.
#[derive(Debug, Clone)]
pub enum JsonValue {
    /// A floating-point metric, formatted with three decimals.
    Num(f64),
    /// An integer metric.
    Int(u64),
    /// A string label.
    Str(String),
}

/// Formats one JSON line of a `BENCH_*.json` trajectory:
/// `{"bench":"<name>",<fields...>,"date":"YYYY-MM-DD"}`.
///
/// # Example
///
/// ```
/// let line = bench::json_line(
///     "demo/speedup",
///     &[("speedup", bench::JsonValue::Num(2.0))],
/// );
/// assert!(line.starts_with("{\"bench\":\"demo/speedup\",\"speedup\":2.000,"));
/// assert!(line.contains("\"date\":\""));
/// ```
pub fn json_line(bench: &str, fields: &[(&str, JsonValue)]) -> String {
    let mut out = format!("{{\"bench\":\"{bench}\"");
    for (key, value) in fields {
        match value {
            JsonValue::Num(v) => out.push_str(&format!(",\"{key}\":{v:.3}")),
            JsonValue::Int(v) => out.push_str(&format!(",\"{key}\":{v}")),
            JsonValue::Str(v) => out.push_str(&format!(",\"{key}\":\"{v}\"")),
        }
    }
    out.push_str(&format!(",\"date\":\"{}\"}}", today()));
    out
}

/// Writes a recorded trajectory (one JSON line per entry) to
/// `BENCH_<topic>.json` in the current directory, replacing any previous
/// recording. Panics (with the path) if the file cannot be written, matching
/// the recorder binaries' fail-loud convention.
pub fn write_bench_file(topic: &str, lines: &[String]) -> String {
    let path = format!("BENCH_{topic}.json");
    let mut contents = lines.join("\n");
    if !contents.is_empty() {
        contents.push('\n');
    }
    std::fs::write(&path, contents).unwrap_or_else(|e| panic!("cannot write {path}: {e}"));
    path
}

/// Extracts the last recorded value of `field` for `bench` from a
/// `BENCH_*.json` trajectory (flat JSON-lines schema; no JSON dependency in
/// the offline environment). [`write_bench_file`] replaces the file on each
/// run, but trajectories may be appended by hand (or by older recorders),
/// so the last matching entry wins.
///
/// # Example
///
/// ```
/// let contents = "{\"bench\":\"w/speedup\",\"speedup\":1.5}\n\
///                 {\"bench\":\"w/speedup\",\"speedup\":2.5}\n";
/// assert_eq!(bench::parse_metric(contents, "w/speedup", "speedup"), Some(2.5));
/// assert_eq!(bench::parse_metric(contents, "other", "speedup"), None);
/// ```
pub fn parse_metric(contents: &str, bench: &str, field: &str) -> Option<f64> {
    let needle = format!("\"bench\":\"{bench}\"");
    let field_key = format!("\"{field}\":");
    contents
        .lines()
        .rev()
        .find(|line| line.contains(&needle))
        .and_then(|line| {
            let at = line.find(&field_key)?;
            let tail = &line[at + field_key.len()..];
            let num: String = tail
                .chars()
                .take_while(|c| c.is_ascii_digit() || *c == '.' || *c == '-' || *c == 'e')
                .collect();
            num.parse().ok()
        })
}

/// Parses the vendored criterion stub's report lines
/// (`name    time:  14.2 µs/iter  (...)`) into `(benchmark name,
/// nanoseconds per iteration)` pairs, ready to record via [`json_line`].
///
/// # Example
///
/// ```
/// let out = "fusible_prefix/window/32    time:   14.2 µs/iter  (211 iters, 3 samples)\n";
/// let parsed = bench::scrape_criterion(out);
/// assert_eq!(parsed, vec![("fusible_prefix/window/32".to_string(), 14_200.0)]);
/// ```
pub fn scrape_criterion(output: &str) -> Vec<(String, f64)> {
    let mut entries = Vec::new();
    for line in output.lines() {
        let Some((name, rest)) = line.split_once("time:") else {
            continue;
        };
        let name = name.trim();
        if name.is_empty() {
            continue;
        }
        let Some((value, _)) = rest.split_once("/iter") else {
            continue;
        };
        let value = value.trim();
        let Some((num, unit)) = value.split_once(char::is_whitespace) else {
            continue;
        };
        let Ok(num) = num.trim().parse::<f64>() else {
            continue;
        };
        let scale = match unit.trim() {
            "ns" => 1.0,
            "µs" | "us" => 1e3,
            "ms" => 1e6,
            "s" => 1e9,
            _ => continue,
        };
        entries.push((name.to_string(), num * scale));
    }
    entries
}

// ---------------------------------------------------------------------------
// Compile-time calibration fitting (the `calibrate` binary).
// ---------------------------------------------------------------------------

/// Least-squares fit of `t ≈ b + c1·x1 + c2·x2` over `(x1, x2, t)` samples,
/// returning `[b, c1, c2]`. Solves the 3×3 normal equations by Gaussian
/// elimination with partial pivoting; returns `None` if the design is
/// degenerate (fewer than three samples, or `x1`/`x2` not independently
/// varied — the calibration grid varies ops-per-stage and stage count
/// separately precisely so this cannot happen there).
pub fn fit_affine2(samples: &[(f64, f64, f64)]) -> Option<[f64; 3]> {
    if samples.len() < 3 {
        return None;
    }
    // Normal equations: (XᵀX) β = Xᵀt with rows [1, x1, x2].
    let mut a = [[0.0f64; 3]; 3];
    let mut rhs = [0.0f64; 3];
    for &(x1, x2, t) in samples {
        let row = [1.0, x1, x2];
        for i in 0..3 {
            for j in 0..3 {
                a[i][j] += row[i] * row[j];
            }
            rhs[i] += row[i] * t;
        }
    }
    // Gaussian elimination with partial pivoting.
    for col in 0..3 {
        let pivot = (col..3).max_by(|&i, &j| {
            a[i][col].abs().partial_cmp(&a[j][col].abs()).unwrap()
        })?;
        if a[pivot][col].abs() < 1e-12 {
            return None;
        }
        a.swap(col, pivot);
        rhs.swap(col, pivot);
        let pivot_row = a[col];
        for row in col + 1..3 {
            let f = a[row][col] / pivot_row[col];
            for (dst, &pv) in a[row].iter_mut().zip(&pivot_row).skip(col) {
                *dst -= f * pv;
            }
            rhs[row] -= f * rhs[col];
        }
    }
    let mut beta = [0.0f64; 3];
    for row in (0..3).rev() {
        let mut acc = rhs[row];
        for k in row + 1..3 {
            acc -= a[row][k] * beta[k];
        }
        beta[row] = acc / a[row][row];
    }
    beta.iter().all(|c| c.is_finite()).then_some(beta)
}

/// Coefficient of determination (R²) of a fit over the same samples.
pub fn fit_r2(samples: &[(f64, f64, f64)], beta: &[f64; 3]) -> f64 {
    let mean = samples.iter().map(|s| s.2).sum::<f64>() / samples.len().max(1) as f64;
    let (mut ss_res, mut ss_tot) = (0.0, 0.0);
    for &(x1, x2, t) in samples {
        let pred = beta[0] + beta[1] * x1 + beta[2] * x2;
        ss_res += (t - pred) * (t - pred);
        ss_tot += (t - mean) * (t - mean);
    }
    if ss_tot <= 0.0 {
        return 1.0;
    }
    1.0 - ss_res / ss_tot
}

/// Clamps fitted compile-model coefficients to a non-negative floor so the
/// model stays monotonic in module size even under measurement noise (a
/// slightly negative fitted intercept or slope is noise, not physics).
pub fn clamp_coefficients(beta: [f64; 3], floor: f64) -> [f64; 3] {
    beta.map(|c| if c.is_finite() { c.max(floor) } else { floor })
}

/// Today's date as YYYY-MM-DD (days-since-epoch civil conversion; no chrono
/// in the offline environment).
pub fn today() -> String {
    let secs = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_secs())
        .unwrap_or(0);
    let mut days = (secs / 86_400) as i64;
    days += 719_468;
    let era = days.div_euclid(146_097);
    let doe = days.rem_euclid(146_097);
    let yoe = (doe - doe / 1460 + doe / 36_524 - doe / 146_096) / 365;
    let y = yoe + era * 400;
    let doy = doe - (365 * yoe + yoe / 4 - yoe / 100);
    let mp = (5 * doy + 2) / 153;
    let d = doy - (153 * mp + 2) / 5 + 1;
    let m = if mp < 10 { mp + 3 } else { mp - 9 };
    let y = if m <= 2 { y + 1 } else { y };
    format!("{y:04}-{m:02}-{d:02}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn geomean_basics() {
        assert!((geomean(&[2.0, 8.0]) - 4.0).abs() < 1e-12);
        assert_eq!(geomean(&[]), 0.0);
        assert!((geomean(&[3.0]) - 3.0).abs() < 1e-12);
    }

    #[test]
    fn sweep_collects_each_gpu_count() {
        let (mode, results) = sweep(Mode::Fused, &[1, 2], |m, g| {
            apps::black_scholes::run(m, g, 64, 2, false)
        });
        assert_eq!(mode, Mode::Fused);
        assert_eq!(results.len(), 2);
        assert_eq!(results[0].gpus, 1);
        assert_eq!(results[1].gpus, 2);
    }

    #[test]
    fn json_line_schema() {
        let line = json_line(
            "kernel_backends/cg/interp",
            &[
                ("backend", JsonValue::Str("interp".into())),
                ("ns_per_element", JsonValue::Num(50.637)),
                ("elements", JsonValue::Int(32768)),
            ],
        );
        assert!(line.starts_with(
            "{\"bench\":\"kernel_backends/cg/interp\",\"backend\":\"interp\",\
             \"ns_per_element\":50.637,\"elements\":32768,\"date\":\""
        ));
        assert!(line.ends_with('}'));
    }

    #[test]
    fn parse_metric_takes_the_last_entry() {
        let contents = "{\"bench\":\"a/x\",\"v\":1.0}\n{\"bench\":\"a/x\",\"v\":3.5}\n";
        assert_eq!(parse_metric(contents, "a/x", "v"), Some(3.5));
        assert_eq!(parse_metric(contents, "a/x", "w"), None);
        assert_eq!(parse_metric(contents, "b/x", "v"), None);
    }

    #[test]
    fn scrape_criterion_units() {
        let out = "\
a/b    time:     250.0 ns/iter  (1 iters, 1 samples)
c      time:      1.5 ms/iter  (2 iters, 1 samples)
noise line without timing
d      time:      2.000 s/iter  (1 iters, 1 samples)
";
        let parsed = scrape_criterion(out);
        assert_eq!(parsed.len(), 3);
        assert_eq!(parsed[0], ("a/b".to_string(), 250.0));
        assert_eq!(parsed[1], ("c".to_string(), 1.5e6));
        assert_eq!(parsed[2], ("d".to_string(), 2.0e9));
    }

    #[test]
    fn fit_affine2_recovers_exact_linear_data() {
        // t = 100 + 7·x1 + 45·x2, sampled on a grid that varies each factor
        // independently (the calibrate binary's grid shape).
        let mut samples = Vec::new();
        for &x1 in &[2.0, 8.0, 24.0, 64.0] {
            for &x2 in &[1.0, 2.0, 4.0, 8.0, 16.0] {
                samples.push((x1, x2, 100.0 + 7.0 * x1 + 45.0 * x2));
            }
        }
        let beta = fit_affine2(&samples).unwrap();
        assert!((beta[0] - 100.0).abs() < 1e-6);
        assert!((beta[1] - 7.0).abs() < 1e-9);
        assert!((beta[2] - 45.0).abs() < 1e-9);
        assert!(fit_r2(&samples, &beta) > 0.999999);
    }

    #[test]
    fn fit_affine2_rejects_degenerate_designs() {
        // Too few samples.
        assert_eq!(fit_affine2(&[(1.0, 1.0, 1.0), (2.0, 2.0, 2.0)]), None);
        // x1 and x2 perfectly collinear: the normal equations are singular.
        let collinear: Vec<(f64, f64, f64)> =
            (0..10).map(|i| (i as f64, 2.0 * i as f64, i as f64)).collect();
        assert_eq!(fit_affine2(&collinear), None);
    }

    #[test]
    fn fitted_coefficients_are_finite_and_monotonic_after_clamping() {
        // Noisy data can fit a slightly negative intercept; clamping restores
        // the monotonic-in-module-size property the cost model requires.
        let samples = vec![
            (2.0, 1.0, 10.0),
            (8.0, 1.0, 30.0),
            (2.0, 4.0, 11.0),
            (8.0, 4.0, 31.0),
            (24.0, 8.0, 80.0),
            (64.0, 16.0, 200.0),
        ];
        let beta = clamp_coefficients(fit_affine2(&samples).unwrap(), 0.0);
        assert!(beta.iter().all(|c| c.is_finite() && *c >= 0.0));
        // Monotonic: adding ops or stages never predicts cheaper.
        let predict = |x1: f64, x2: f64| beta[0] + beta[1] * x1 + beta[2] * x2;
        assert!(predict(64.0, 4.0) >= predict(8.0, 4.0));
        assert!(predict(64.0, 16.0) >= predict(64.0, 4.0));
        assert_eq!(clamp_coefficients([f64::NAN, -1.0, 2.0], 0.5), [0.5, 0.5, 2.0]);
    }

    #[test]
    fn today_is_iso_formatted() {
        let d = today();
        assert_eq!(d.len(), 10);
        assert_eq!(d.as_bytes()[4], b'-');
        assert_eq!(d.as_bytes()[7], b'-');
    }
}
