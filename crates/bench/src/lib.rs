//! Benchmark harness utilities shared by the figure-regeneration binaries.
//!
//! Each binary in `src/bin/` regenerates one table or figure of the paper's
//! evaluation (see DESIGN.md's per-experiment index and EXPERIMENTS.md for the
//! measured results):
//!
//! * `fig09_task_table` — tasks per iteration with/without fusion (Figure 9)
//! * `fig10_microbench` — Black-Scholes and Jacobi weak scaling (Figure 10)
//! * `fig11_solvers`    — CG and BiCGSTAB vs PETSc (Figure 11)
//! * `fig12_apps`       — GMG, CFD and TorchSWE (Figure 12)
//! * `fig13_warmup`     — warmup/compilation times and breakeven (Figure 13)
//! * `summary`          — headline geometric-mean speedups (Section 7)
//! * `ablation`         — task-fusion-only and no-memoization ablations
//! * `executor_compare` — host wall-clock of functional runs under the serial
//!   vs work-stealing runtime executor (docs/RUNTIME.md)
//!
//! The Criterion benches in `benches/` measure the *wall-clock* cost of the
//! analyses themselves (fusion constraint checking, canonicalization, kernel
//! compilation), demonstrating the scale-free property of the IR.
//!
//! # Example
//!
//! ```
//! // Headline speedups are reported as geometric means over benchmarks.
//! let speedups = [2.0, 8.0];
//! assert!((bench::geomean(&speedups) - 4.0).abs() < 1e-12);
//! ```

use apps::{BenchmarkResult, Mode};

/// The GPU counts of the paper's weak-scaling studies.
pub const GPU_COUNTS: &[usize] = &[1, 2, 4, 8, 16, 32, 64, 128];

/// Prints the process-wide execution axes (runtime executor and kernel
/// backend, as resolved from `DIFFUSE_EXECUTOR`/`DIFFUSE_BACKEND`) so every
/// recorded table states the configuration it was measured under. Simulated
/// time is invariant across both axes; this line is how a reader of two
/// pasted tables knows they are comparable.
pub fn print_execution_axes() {
    let executor = match diffuse::ExecutorKind::from_env() {
        diffuse::ExecutorKind::Serial => "serial".to_string(),
        diffuse::ExecutorKind::WorkStealing { workers: None } => "work-stealing".to_string(),
        diffuse::ExecutorKind::WorkStealing { workers: Some(n) } => {
            format!("work-stealing({n})")
        }
    };
    println!(
        "(executor: {executor}, kernel backend: {}; simulated time is invariant across both)",
        diffuse::BackendKind::from_env().id()
    );
}

/// A smaller sweep for quick checks.
pub const GPU_COUNTS_SHORT: &[usize] = &[1, 8, 32, 128];

/// Geometric mean of a slice of positive values.
pub fn geomean(values: &[f64]) -> f64 {
    if values.is_empty() {
        return 0.0;
    }
    let log_sum: f64 = values.iter().map(|v| v.max(1e-300).ln()).sum();
    (log_sum / values.len() as f64).exp()
}

/// Prints a weak-scaling series as a text table: one row per GPU count, one
/// column per mode, values are throughput in iterations per second.
pub fn print_weak_scaling(title: &str, series: &[(Mode, Vec<BenchmarkResult>)]) {
    println!("\n=== {title} (throughput, iterations/s; higher is better) ===");
    print!("{:>6}", "GPUs");
    for (mode, _) in series {
        print!("{:>16}", mode.to_string());
    }
    println!();
    let gpu_counts: Vec<usize> = series
        .first()
        .map(|(_, rs)| rs.iter().map(|r| r.gpus).collect())
        .unwrap_or_default();
    for (i, gpus) in gpu_counts.iter().enumerate() {
        print!("{gpus:>6}");
        for (_, results) in series {
            print!("{:>16.3}", results[i].throughput);
        }
        println!();
    }
    // Speedup of the first series over each other series, geometric mean.
    if let Some((first_mode, first)) = series.first() {
        for (mode, results) in series.iter().skip(1) {
            let speedups: Vec<f64> = first
                .iter()
                .zip(results)
                .map(|(f, o)| f.throughput / o.throughput.max(1e-12))
                .collect();
            println!(
                "geo-mean speedup of {first_mode} over {mode}: {:.2}x",
                geomean(&speedups)
            );
        }
    }
}

/// Runs one application across a GPU sweep in one mode.
pub fn sweep<F>(mode: Mode, gpu_counts: &[usize], mut run: F) -> (Mode, Vec<BenchmarkResult>)
where
    F: FnMut(Mode, usize) -> BenchmarkResult,
{
    let results = gpu_counts.iter().map(|&g| run(mode, g)).collect();
    (mode, results)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn geomean_basics() {
        assert!((geomean(&[2.0, 8.0]) - 4.0).abs() < 1e-12);
        assert_eq!(geomean(&[]), 0.0);
        assert!((geomean(&[3.0]) - 3.0).abs() < 1e-12);
    }

    #[test]
    fn sweep_collects_each_gpu_count() {
        let (mode, results) = sweep(Mode::Fused, &[1, 2], |m, g| {
            apps::black_scholes::run(m, g, 64, 2, false)
        });
        assert_eq!(mode, Mode::Fused);
        assert_eq!(results.len(), 2);
        assert_eq!(results[0].gpus, 1);
        assert_eq!(results[1].gpus, 2);
    }
}
