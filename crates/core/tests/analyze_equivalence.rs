//! End-to-end equivalence and acceptance tests for the privilege analyzer
//! (`DIFFUSE_ANALYZE`; see `docs/ANALYZE.md`).
//!
//! The scenario is the phantom-privilege pattern the analyzer exists to fix:
//! an operation whose signature declares a read-write scratch argument that
//! its kernel never touches. Passed through an aliasing partition
//! (`Partition::Replicate`), the scratch manufactures true/anti dependences
//! between otherwise pipeline-fusible tasks, so under declared privileges the
//! window splits. Under [`AnalyzeMode::Inferred`] the footprint analyzer
//! proves the scratch read-only, the phantom dependences disappear, and the
//! window fuses — with bitwise-identical results, because tightening only
//! skips the write-back of bytes the kernel provably left untouched.
//!
//! Coverage:
//! - Acceptance: declared mode splits (launch count 2, rejection recorded),
//!   inferred mode fuses (launch count drops, `privileges_tightened` > 0),
//!   outputs bitwise identical. Verification stays on, so every tightened
//!   launch also re-verifies against its effective signature (the
//!   independent cross-check).
//! - The why-not explainer names the violating boundary in declared mode
//!   and reports full fusion in inferred mode.
//! - The full 2 executors × 3 backends matrix: declared vs inferred
//!   bitwise-identical, with `fused_tasks` never lower under inferred.

use diffuse::{AnalyzeMode, BackendKind, Context, DiffuseConfig, ExecutorKind};
use ir::Partition;
use kernel::{BufferId, BufferRole, KernelModule, LoopBuilder, TaskKind, TaskSignature};
use machine::MachineConfig;

const N: u64 = 32;

/// Registers the phantom-scratch op: `out[i] = a[i] + b[i]`, with a fourth
/// read-write scratch argument the kernel never names.
fn register_phantom(ctx: &Context) -> TaskKind {
    let lib = ctx.register_library("phantom");
    lib.register(
        "add_scratch",
        TaskSignature::new().read().read().write().read_write(),
        |_args| {
            let mut m = KernelModule::new(4);
            m.set_role(BufferId(2), BufferRole::Output);
            let mut b = LoopBuilder::new("add_scratch", BufferId(2));
            let (x, y) = (b.load(BufferId(0)), b.load(BufferId(1)));
            let s = b.add(x, y);
            b.store(BufferId(2), s);
            m.push_loop(b.finish());
            m
        },
    )
}

/// Runs the two-task chain `c = a + b; e = c + d` (both tasks dragging the
/// shared replicated scratch) twice, returning the final `c`/`e` contents
/// and the context's stats.
fn run_chain(config: DiffuseConfig) -> (Vec<Vec<f64>>, diffuse::ExecutionStats) {
    let ctx = Context::new(config);
    let add = register_phantom(&ctx);
    let block = Partition::block(vec![N / 2]);

    let a = ctx.create_store(vec![N], "a");
    let b = ctx.create_store(vec![N], "b");
    let c = ctx.create_store(vec![N], "c");
    let d = ctx.create_store(vec![N], "d");
    let e = ctx.create_store(vec![N], "e");
    let scratch = ctx.create_store(vec![N], "scratch");
    ctx.write_store(&a, (0..N).map(|i| 0.25 * i as f64 - 3.0).collect());
    ctx.write_store(&b, (0..N).map(|i| 1.5 - 0.125 * i as f64).collect());
    ctx.write_store(&d, (0..N).map(|i| (i as f64).sqrt()).collect());
    ctx.fill(&scratch, 7.0);

    for _ in 0..2 {
        ctx.task(add)
            .read(&a, block.clone())
            .read(&b, block.clone())
            .write(&c, block.clone())
            .read_write(&scratch, Partition::Replicate)
            .launch();
        ctx.task(add)
            .read(&c, block.clone())
            .read(&d, block.clone())
            .write(&e, block.clone())
            .read_write(&scratch, Partition::Replicate)
            .launch();
        ctx.flush();
    }

    let outputs = vec![
        ctx.read_store(&c).unwrap(),
        ctx.read_store(&e).unwrap(),
        ctx.read_store(&scratch).unwrap(),
    ];
    (outputs, ctx.stats())
}

fn base_config() -> DiffuseConfig {
    // Verification explicitly on: every analyzer-tightened launch must pass
    // the independent effective-signature re-check (fail-fast panics here).
    DiffuseConfig::fused(MachineConfig::with_gpus(2))
        .with_verification(true)
        .with_verify_fail_fast(true)
}

fn bits(buffers: &[Vec<f64>]) -> Vec<Vec<u64>> {
    buffers
        .iter()
        .map(|b| b.iter().map(|v| v.to_bits()).collect())
        .collect()
}

/// The acceptance criterion: a window that dies on phantom privileges under
/// declared mode fuses bitwise-identically under inferred mode, with the
/// launch-count drop and the tightening visible in the stats.
#[test]
fn phantom_scratch_chain_fuses_only_under_inferred() {
    let (declared_out, declared) = run_chain(base_config().with_analyze(AnalyzeMode::Declared));
    let (inferred_out, inferred) = run_chain(base_config().with_analyze(AnalyzeMode::Inferred));

    // Bitwise-identical results, including the untouched scratch.
    assert_eq!(bits(&declared_out), bits(&inferred_out));
    assert_eq!(declared_out[2], vec![7.0; N as usize]);

    // Declared mode: the replicated read-write scratch splits both windows.
    assert_eq!(declared.tasks_submitted, 4);
    assert_eq!(declared.tasks_launched, 4);
    assert_eq!(declared.fused_tasks, 0);
    assert_eq!(declared.privileges_tightened, 0);
    assert!(
        declared.rejections_unknown >= 1,
        "the aliasing-scratch boundary must be recorded as an unknown-class rejection"
    );

    // Inferred mode: scratch proven read-only, both windows fuse.
    assert_eq!(inferred.tasks_submitted, 4);
    assert_eq!(inferred.tasks_launched, 2);
    assert_eq!(inferred.fused_tasks, 2);
    assert_eq!(
        inferred.privileges_tightened, 4,
        "one scratch argument tightened per submitted task"
    );
    assert!(inferred.tasks_launched < declared.tasks_launched);
    // The cross-check actually ran: verification counted invariant checks.
    assert!(inferred.verification_checks > 0);
}

/// The why-not explainer: in declared mode the report names the boundary,
/// classifies the edge and suggests a fix; in inferred mode the same window
/// is fully fused.
#[test]
fn explainer_reports_the_phantom_boundary() {
    let build_window = |mode: AnalyzeMode| {
        let ctx = Context::new(base_config().with_analyze(mode));
        let add = register_phantom(&ctx);
        let block = Partition::block(vec![N / 2]);
        let a = ctx.create_store(vec![N], "a");
        let b = ctx.create_store(vec![N], "b");
        let c = ctx.create_store(vec![N], "c");
        let d = ctx.create_store(vec![N], "d");
        let e = ctx.create_store(vec![N], "e");
        let scratch = ctx.create_store(vec![N], "scratch");
        for s in [&a, &b, &d, &scratch] {
            ctx.fill(s, 1.0);
        }
        ctx.task(add)
            .read(&a, block.clone())
            .read(&b, block.clone())
            .write(&c, block.clone())
            .read_write(&scratch, Partition::Replicate)
            .launch();
        ctx.task(add)
            .read(&c, block.clone())
            .read(&d, block.clone())
            .write(&e, block.clone())
            .read_write(&scratch, Partition::Replicate)
            .launch();
        let report = ctx.explain();
        ctx.flush(); // drain the window before dropping the context
        report
    };

    let declared = build_window(AnalyzeMode::Declared);
    assert!(!declared.fully_fused());
    assert_eq!(declared.segments, vec![1, 1]);
    assert_eq!(declared.boundaries.len(), 1);
    let boundary = &declared.boundaries[0];
    assert_eq!(boundary.boundary, 1);
    assert_eq!(boundary.class, Some(diffuse::DepClass::Unknown));
    assert!(!boundary.suggestion.is_empty());
    let text = declared.to_string();
    assert!(text.contains("boundary"), "report must name the boundary: {text}");
    assert!(text.contains("add_scratch"), "report must name the task: {text}");

    let inferred = build_window(AnalyzeMode::Inferred);
    assert!(inferred.fully_fused(), "tightened window must fully fuse: {inferred}");
    assert!(inferred.boundaries.is_empty());
}

/// Declared vs inferred across the full executor × backend matrix: results
/// bitwise identical, fused-task count never lower under inferred, and the
/// launch count never higher.
#[test]
fn modes_are_bitwise_identical_across_executors_and_backends() {
    let executors = [
        ExecutorKind::Serial,
        ExecutorKind::WorkStealing { workers: Some(2) },
    ];
    let backends = [BackendKind::Interp, BackendKind::Closure, BackendKind::Simd];
    for executor in executors {
        for backend in backends {
            let config = || base_config().with_executor(executor).with_backend(backend);
            let (declared_out, declared) =
                run_chain(config().with_analyze(AnalyzeMode::Declared));
            let (inferred_out, inferred) =
                run_chain(config().with_analyze(AnalyzeMode::Inferred));
            assert_eq!(
                bits(&declared_out),
                bits(&inferred_out),
                "{executor:?}/{backend:?}: declared and inferred modes diverged bitwise"
            );
            assert!(
                inferred.fused_tasks >= declared.fused_tasks,
                "{executor:?}/{backend:?}: inferred mode must never fuse less"
            );
            assert!(
                inferred.tasks_launched <= declared.tasks_launched,
                "{executor:?}/{backend:?}: inferred mode must never launch more"
            );
            assert!(inferred.privileges_tightened > 0);
        }
    }
}
