//! Property test: typed [`diffuse::LaunchBuilder`] launches are
//! **bit-identical** to equivalent raw `Context::submit` launches.
//!
//! The builder is sugar plus validation — it must not change what reaches
//! the task window. These tests replay random well-formed task sequences
//! over a shared store pool through two fresh contexts, one submitting raw
//! `StoreArg` vectors and one using the builder, and require identical
//! functional results (to the bit), identical simulated time and identical
//! fusion statistics.

use diffuse::{Context, DiffuseConfig, StoreHandle, TaskKind, TaskSignature};
use ir::{Partition, PartitionId, Privilege, ReductionOp, StoreArg};
use kernel::{BufferId, BufferRole, KernelModule, LoopBuilder};
use machine::MachineConfig;
use proptest::prelude::*;

const GPUS: usize = 2;
const N: u64 = 24;
const NUM_STORES: usize = 5;

/// One op application in a generated trace.
#[derive(Debug, Clone)]
enum Step {
    /// pool[c] = pool[a] + pool[b]
    Add { a: usize, b: usize, c: usize },
    /// pool[b] = factor * pool[a]
    Scale { a: usize, b: usize, factor: f64 },
    /// scalar += pool[a] . pool[a]
    Dot { a: usize },
    /// Flush the window.
    Flush,
}

fn arb_step() -> impl Strategy<Value = Step> {
    let idx = || 0..NUM_STORES;
    prop_oneof![
        (idx(), idx(), idx()).prop_map(|(a, b, c)| Step::Add { a, b, c }),
        (idx(), idx(), 1u32..5).prop_map(|(a, b, f)| Step::Scale {
            a,
            b,
            factor: f as f64 * 0.25,
        }),
        idx().prop_map(|a| Step::Dot { a }),
        Just(Step::Flush),
    ]
}

struct Harness {
    ctx: Context,
    add: TaskKind,
    scale: TaskKind,
    dot: TaskKind,
    pool: Vec<StoreHandle>,
    acc: StoreHandle,
    block: PartitionId,
    replicate: PartitionId,
}

fn harness() -> Harness {
    let ctx = Context::new(DiffuseConfig::fused(MachineConfig::with_gpus(GPUS)));
    let lib = ctx.register_library("trace");
    let add = lib.register("add", TaskSignature::new().read().read().write(), |_| {
        let mut m = KernelModule::new(3);
        m.set_role(BufferId(2), BufferRole::Output);
        let mut b = LoopBuilder::new("add", BufferId(2));
        let (x, y) = (b.load(BufferId(0)), b.load(BufferId(1)));
        let s = b.add(x, y);
        b.store(BufferId(2), s);
        m.push_loop(b.finish());
        m
    });
    let scale = lib.register(
        "scale",
        TaskSignature::new().read().write().scalars(1),
        |_| {
            let mut m = KernelModule::new(2);
            m.set_role(BufferId(1), BufferRole::Output);
            let mut b = LoopBuilder::new("scale", BufferId(1));
            let x = b.load(BufferId(0));
            let p = b.param(0);
            let v = b.mul(x, p);
            b.store(BufferId(1), v);
            m.push_loop(b.finish());
            m
        },
    );
    let dot = lib.register("dot", TaskSignature::new().read().reduce(), |_| {
        let mut m = KernelModule::new(2);
        m.set_role(BufferId(1), BufferRole::Reduction);
        let mut b = LoopBuilder::new("dot", BufferId(0));
        let x = b.load(BufferId(0));
        let xx = b.mul(x, x);
        b.reduce(BufferId(1), kernel::ReduceOp::Sum, xx);
        m.push_loop(b.finish());
        m
    });
    let pool: Vec<StoreHandle> = (0..NUM_STORES)
        .map(|i| {
            let h = ctx.create_store(vec![N], &format!("s{i}"));
            ctx.write_store(
                &h,
                (0..N).map(|j| ((i as u64 * 17 + j * 3) % 11) as f64 * 0.5).collect(),
            );
            h
        })
        .collect();
    let acc = ctx.create_store(vec![1], "acc");
    ctx.fill(&acc, 0.0);
    Harness {
        ctx,
        add,
        scale,
        dot,
        pool,
        acc,
        block: PartitionId::intern(&Partition::block(vec![N / GPUS as u64])),
        replicate: PartitionId::intern(&Partition::Replicate),
    }
}

/// Final observable state: pool store bits, accumulator bits, the simulated
/// clock, and the `(attempted, fused, launched)` fusion counters.
type Observation = (Vec<Vec<u64>>, Vec<u64>, f64, (u64, u64, u64));

/// Final observable state (see [`Observation`]).
fn observe(h: &Harness) -> Observation {
    let pool_bits: Vec<Vec<u64>> = h
        .pool
        .iter()
        .map(|s| {
            h.ctx
                .read_store(s)
                .expect("functional run")
                .into_iter()
                .map(f64::to_bits)
                .collect()
        })
        .collect();
    let acc_bits = h
        .ctx
        .read_store(&h.acc)
        .expect("functional run")
        .into_iter()
        .map(f64::to_bits)
        .collect();
    let stats = h.ctx.stats();
    (
        pool_bits,
        acc_bits,
        h.ctx.elapsed(),
        (stats.tasks_submitted, stats.tasks_launched, stats.fused_tasks),
    )
}

fn run_raw(steps: &[Step]) -> Observation {
    let h = harness();
    for step in steps {
        match *step {
            Step::Add { a, b, c } => {
                h.ctx.submit(
                    h.add,
                    "add",
                    vec![
                        StoreArg::new(h.pool[a].id(), h.block, Privilege::Read),
                        StoreArg::new(h.pool[b].id(), h.block, Privilege::Read),
                        StoreArg::new(h.pool[c].id(), h.block, Privilege::Write),
                    ],
                    vec![],
                );
            }
            Step::Scale { a, b, factor } => {
                h.ctx.submit(
                    h.scale,
                    "scale",
                    vec![
                        StoreArg::new(h.pool[a].id(), h.block, Privilege::Read),
                        StoreArg::new(h.pool[b].id(), h.block, Privilege::Write),
                    ],
                    vec![factor],
                );
            }
            Step::Dot { a } => {
                h.ctx.submit(
                    h.dot,
                    "dot",
                    vec![
                        StoreArg::new(h.pool[a].id(), h.block, Privilege::Read),
                        StoreArg::new(
                            h.acc.id(),
                            h.replicate,
                            Privilege::Reduce(ReductionOp::Sum),
                        ),
                    ],
                    vec![],
                );
            }
            Step::Flush => h.ctx.flush(),
        }
    }
    h.ctx.flush();
    observe(&h)
}

fn run_builder(steps: &[Step]) -> Observation {
    let h = harness();
    for step in steps {
        match *step {
            Step::Add { a, b, c } => {
                h.ctx
                    .task(h.add)
                    .read(&h.pool[a], h.block)
                    .read(&h.pool[b], h.block)
                    .write(&h.pool[c], h.block)
                    .launch();
            }
            Step::Scale { a, b, factor } => {
                h.ctx
                    .task(h.scale)
                    .read(&h.pool[a], h.block)
                    .write(&h.pool[b], h.block)
                    .scalar(factor)
                    .launch();
            }
            Step::Dot { a } => {
                h.ctx
                    .task(h.dot)
                    .read(&h.pool[a], h.block)
                    .reduce(&h.acc, h.replicate, ReductionOp::Sum)
                    .launch();
            }
            Step::Flush => h.ctx.flush(),
        }
    }
    h.ctx.flush();
    observe(&h)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Builder-submitted traces are indistinguishable from raw-submitted
    /// traces: same bits in every store, same simulated time, same fusion
    /// decisions. (The builder defaults task names from the registry, and
    /// task names are not part of the canonical window, so naming cannot
    /// make the runs diverge.)
    #[test]
    fn builder_launches_are_bit_identical_to_raw_submits(
        steps in prop::collection::vec(arb_step(), 1..24)
    ) {
        let raw = run_raw(&steps);
        let built = run_builder(&steps);
        prop_assert_eq!(&raw.0, &built.0, "pool store bits diverged");
        prop_assert_eq!(&raw.1, &built.1, "reduction accumulator diverged");
        prop_assert_eq!(raw.2.to_bits(), built.2.to_bits(), "simulated time diverged");
        prop_assert_eq!(raw.3, built.3, "fusion statistics diverged");
    }
}
