//! Configuration of the Diffuse middle layer.

use kernel::BackendKind;
use machine::MachineConfig;
use runtime::{ExecutorKind, FaultPlan, RecoveryPolicy};

/// Which privileges the fusion analysis trusts (the `DIFFUSE_ANALYZE` knob;
/// see `docs/ANALYZE.md`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum AnalyzeMode {
    /// Use the privileges each task declared, verbatim (historical behavior).
    #[default]
    Declared,
    /// Run the abstract-interpretation footprint analysis over each task
    /// kind's generated kernel (`kernel::analyze`, memoized by module
    /// fingerprint) and *tighten* declared privileges the kernel provably
    /// never exercises: a declared write/read-write/reduce argument whose
    /// kernel never stores or reduces to the buffer is narrowed to read.
    /// Tightening is bitwise-invisible to results (the runtime's copy-in is
    /// unconditional; only the redundant identical write-back is skipped)
    /// while windows that previously split on phantom privileges now fuse.
    Inferred,
}

/// Configuration of a [`crate::Context`].
///
/// The presets mirror the configurations evaluated in the paper:
/// [`DiffuseConfig::fused`] is full Diffuse (task fusion + kernel fusion +
/// temporary elimination + memoization); [`DiffuseConfig::unfused`] is the
/// baseline that forwards every task to the runtime unchanged;
/// [`DiffuseConfig::task_fusion_only`] is the ablation discussed in Section 7
/// (task fusion without kernel fusion yields little benefit at these task
/// granularities).
#[derive(Debug, Clone)]
pub struct DiffuseConfig {
    /// The simulated machine.
    pub machine: MachineConfig,
    /// Whether regions hold real data and kernels execute functionally.
    pub materialize_data: bool,
    /// Buffer tasks and replace fusible prefixes with fused tasks.
    pub enable_task_fusion: bool,
    /// Run the kernel pipeline (loop fusion, store forwarding, local
    /// elimination) on fused task bodies.
    pub enable_kernel_fusion: bool,
    /// Demote temporary stores (Definition 4) to task-local buffers.
    pub enable_temp_elimination: bool,
    /// Memoize analysis and compilation over isomorphic windows.
    pub enable_memoization: bool,
    /// Pack independent equal-domain fusible segments of the window side by
    /// side into one wide launch (horizontal fusion) before the vertical
    /// prefix analysis runs. Has no effect unless `enable_task_fusion` is
    /// also set. Defaults to [`DiffuseConfig::horizontal_fusion_from_env`]
    /// (the `DIFFUSE_HORIZONTAL` environment variable; off when unset, so
    /// existing streams are processed bit-for-bit as before).
    pub enable_horizontal_fusion: bool,
    /// Maximum number of (canonical window, compiled artifact) entries the
    /// memoization cache retains; least-recently-used entries are evicted
    /// beyond this. `usize::MAX` disables the bound. Defaults to
    /// [`DiffuseConfig::DEFAULT_MEMO_CAPACITY`].
    pub memo_capacity: usize,
    /// Initial task-window size.
    pub initial_window_size: usize,
    /// Maximum task-window size.
    pub max_window_size: usize,
    /// Which runtime executor runs functional kernel work (defaults to
    /// [`ExecutorKind::from_env`], i.e. the `DIFFUSE_EXECUTOR` environment
    /// variable; serial when unset).
    pub executor: ExecutorKind,
    /// Which kernel backend compiles fused modules into executable artifacts
    /// (defaults to [`BackendKind::from_env`], i.e. the `DIFFUSE_BACKEND`
    /// environment variable; the interpreter when unset). Simulated time is
    /// backend-invariant except through the compile-time model; see
    /// `docs/BACKENDS.md`.
    pub backend: BackendKind,
    /// Re-verify every fusion decision and backend lowering after the fact
    /// (`kernel::verify` + `fusion::verify`; see `docs/VERIFY.md`). A
    /// violated invariant panics with a structured diagnostic naming it.
    /// Defaults to [`DiffuseConfig::verification_from_env`]: the
    /// `DIFFUSE_VERIFY` environment variable when set, otherwise on in debug
    /// builds (`debug_assertions`) and off in release builds.
    pub enable_verification: bool,
    /// How a verifier violation surfaces. `true` (the default in debug
    /// builds, where a violation is a Diffuse bug the test suite should trap
    /// loudly) keeps the historical panic. `false` routes the violation
    /// through the per-launch failure path as a structured
    /// [`runtime::RuntimeError::Verify`]: only the offending window's
    /// dependence cone fails, and independent work completes — the behavior a
    /// long-running service wants (see `docs/RESILIENCE.md`).
    pub verify_fail_fast: bool,
    /// Deterministic fault-injection plan forwarded to the runtime (`None`
    /// disables injection). Defaults to [`FaultPlan::from_env`], i.e. the
    /// `DIFFUSE_FAULTS=<seed>:<rate>` environment variable; unset leaves the
    /// fault layer dormant at zero cost.
    pub fault_plan: Option<FaultPlan>,
    /// Recovery policy applied to injected faults (retry budget, backoff
    /// pricing, GPU health threshold).
    pub recovery: RecoveryPolicy,
    /// Whether the fusion analysis trusts declared privileges or tightens
    /// them with the abstract-interpretation footprint analyzer (defaults to
    /// [`DiffuseConfig::analyze_from_env`], i.e. the `DIFFUSE_ANALYZE`
    /// environment variable; declared when unset, so existing streams are
    /// processed exactly as before). See `docs/ANALYZE.md`.
    pub analyze: AnalyzeMode,
}

impl DiffuseConfig {
    /// Default bound on resident memoization entries. Generous for real
    /// applications (CG needs a handful of window shapes) while keeping a
    /// long-running service from accumulating a compiled artifact for every
    /// window shape it has ever seen.
    pub const DEFAULT_MEMO_CAPACITY: usize = 1024;

    /// Whether `DIFFUSE_HORIZONTAL` requests horizontal fusion: `on`, `1` or
    /// `true` (case-insensitive) enable it; anything else — including unset —
    /// leaves it off. The CI invariance leg toggles this to assert that the
    /// horizontal pass never changes results, only launch counts.
    pub fn horizontal_fusion_from_env() -> bool {
        std::env::var("DIFFUSE_HORIZONTAL")
            .map(|v| {
                let v = v.trim().to_ascii_lowercase();
                v == "on" || v == "1" || v == "true"
            })
            .unwrap_or(false)
    }

    /// Whether `DIFFUSE_VERIFY` requests verification: `on`, `1` or `true`
    /// (case-insensitive) enable it, `off`, `0` or `false` disable it;
    /// unset falls back to `cfg!(debug_assertions)` — the whole test suite
    /// runs verified by default while release benchmarks stay unchecked.
    pub fn verification_from_env() -> bool {
        match std::env::var("DIFFUSE_VERIFY") {
            Ok(v) => {
                let v = v.trim().to_ascii_lowercase();
                v == "on" || v == "1" || v == "true"
            }
            Err(_) => cfg!(debug_assertions),
        }
    }

    /// Which [`AnalyzeMode`] `DIFFUSE_ANALYZE` requests: `inferred` (or
    /// `on`, `1`, `true`) enables privilege tightening; anything else —
    /// including unset and `declared` — preserves declared privileges.
    pub fn analyze_from_env() -> AnalyzeMode {
        match std::env::var("DIFFUSE_ANALYZE") {
            Ok(v) => {
                let v = v.trim().to_ascii_lowercase();
                if v == "inferred" || v == "on" || v == "1" || v == "true" {
                    AnalyzeMode::Inferred
                } else {
                    AnalyzeMode::Declared
                }
            }
            Err(_) => AnalyzeMode::Declared,
        }
    }

    /// Full Diffuse with functional execution.
    pub fn fused(machine: MachineConfig) -> Self {
        DiffuseConfig {
            machine,
            materialize_data: true,
            enable_task_fusion: true,
            enable_kernel_fusion: true,
            enable_temp_elimination: true,
            enable_memoization: true,
            enable_horizontal_fusion: Self::horizontal_fusion_from_env(),
            memo_capacity: Self::DEFAULT_MEMO_CAPACITY,
            initial_window_size: 5,
            max_window_size: 70,
            executor: ExecutorKind::from_env(),
            backend: BackendKind::from_env(),
            enable_verification: Self::verification_from_env(),
            verify_fail_fast: cfg!(debug_assertions),
            fault_plan: FaultPlan::from_env(),
            recovery: RecoveryPolicy::default(),
            analyze: Self::analyze_from_env(),
        }
    }

    /// The unfused baseline: every task goes straight to the runtime.
    pub fn unfused(machine: MachineConfig) -> Self {
        DiffuseConfig {
            enable_task_fusion: false,
            enable_kernel_fusion: false,
            enable_temp_elimination: false,
            enable_memoization: false,
            ..DiffuseConfig::fused(machine)
        }
    }

    /// Task fusion without kernel fusion or temporary elimination (the
    /// ablation the paper discusses: only runtime overhead is removed).
    pub fn task_fusion_only(machine: MachineConfig) -> Self {
        DiffuseConfig {
            enable_kernel_fusion: false,
            enable_temp_elimination: false,
            ..DiffuseConfig::fused(machine)
        }
    }

    /// Switches off functional execution (pure performance simulation for
    /// machine-scale problem sizes).
    pub fn simulation_only(mut self) -> Self {
        self.materialize_data = false;
        self
    }

    /// Overrides the window sizing.
    pub fn with_window(mut self, initial: usize, max: usize) -> Self {
        self.initial_window_size = initial;
        self.max_window_size = max;
        self
    }

    /// Enables or disables horizontal fusion explicitly, overriding the
    /// `DIFFUSE_HORIZONTAL` default. Horizontal fusion reorders the window
    /// to pack independent equal-domain segments into one launch; results
    /// are unchanged (only proven-independent tasks commute) while launch
    /// counts drop for batched independent streams.
    pub fn with_horizontal_fusion(mut self, enabled: bool) -> Self {
        self.enable_horizontal_fusion = enabled;
        self
    }

    /// Disables memoization (ablation).
    pub fn without_memoization(mut self) -> Self {
        self.enable_memoization = false;
        self
    }

    /// Bounds the memoization cache to `capacity` resident entries (LRU
    /// eviction beyond it). Pass `usize::MAX` for an unbounded cache.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn with_memo_capacity(mut self, capacity: usize) -> Self {
        assert!(capacity > 0, "memo capacity must be at least 1");
        self.memo_capacity = capacity;
        self
    }

    /// Overrides the runtime executor (e.g. to force the work-stealing
    /// executor for a functional run regardless of `DIFFUSE_EXECUTOR`).
    pub fn with_executor(mut self, executor: ExecutorKind) -> Self {
        self.executor = executor;
        self
    }

    /// Overrides the kernel backend (e.g. to force the JIT-closure backend
    /// regardless of `DIFFUSE_BACKEND`).
    pub fn with_backend(mut self, backend: BackendKind) -> Self {
        self.backend = backend;
        self
    }

    /// Enables or disables post-pass verification explicitly, overriding the
    /// `DIFFUSE_VERIFY` / `debug_assertions` default. See `docs/VERIFY.md`
    /// for the invariant catalog.
    pub fn with_verification(mut self, enabled: bool) -> Self {
        self.enable_verification = enabled;
        self
    }

    /// Chooses how verifier violations surface: `true` panics (debug-build
    /// default), `false` degrades them to structured per-launch failures that
    /// poison only the offending window's dependence cone.
    pub fn with_verify_fail_fast(mut self, fail_fast: bool) -> Self {
        self.verify_fail_fast = fail_fast;
        self
    }

    /// Enables deterministic fault injection under the given plan, overriding
    /// the `DIFFUSE_FAULTS` default. See `docs/RESILIENCE.md`.
    pub fn with_fault_plan(mut self, plan: FaultPlan) -> Self {
        self.fault_plan = Some(plan);
        self
    }

    /// Overrides the recovery policy (only observable while a fault plan is
    /// active).
    pub fn with_recovery(mut self, recovery: RecoveryPolicy) -> Self {
        self.recovery = recovery;
        self
    }

    /// Chooses the privilege-analysis mode explicitly, overriding the
    /// `DIFFUSE_ANALYZE` default. [`AnalyzeMode::Inferred`] tightens declared
    /// privileges a task's kernel provably never exercises; results are
    /// bitwise-unchanged while phantom-privilege windows fuse.
    pub fn with_analyze(mut self, analyze: AnalyzeMode) -> Self {
        self.analyze = analyze;
        self
    }
}

impl Default for DiffuseConfig {
    fn default() -> Self {
        DiffuseConfig::fused(MachineConfig::default())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_toggle_the_right_flags() {
        let fused = DiffuseConfig::fused(MachineConfig::single_node(4));
        assert!(fused.enable_task_fusion && fused.enable_kernel_fusion);
        let unfused = DiffuseConfig::unfused(MachineConfig::single_node(4));
        assert!(!unfused.enable_task_fusion && !unfused.enable_kernel_fusion);
        let tf = DiffuseConfig::task_fusion_only(MachineConfig::single_node(4));
        assert!(tf.enable_task_fusion && !tf.enable_kernel_fusion);
    }

    #[test]
    fn builders_modify_fields() {
        let c = DiffuseConfig::fused(MachineConfig::single_node(2))
            .simulation_only()
            .with_window(10, 40)
            .without_memoization();
        assert!(!c.materialize_data);
        assert_eq!(c.initial_window_size, 10);
        assert_eq!(c.max_window_size, 40);
        assert!(!c.enable_memoization);
    }

    #[test]
    fn default_is_fused() {
        assert!(DiffuseConfig::default().enable_task_fusion);
        assert_eq!(
            DiffuseConfig::default().memo_capacity,
            DiffuseConfig::DEFAULT_MEMO_CAPACITY
        );
    }

    #[test]
    fn memo_capacity_override() {
        let c = DiffuseConfig::fused(MachineConfig::single_node(2)).with_memo_capacity(7);
        assert_eq!(c.memo_capacity, 7);
    }

    #[test]
    #[should_panic]
    fn zero_memo_capacity_panics() {
        let _ = DiffuseConfig::fused(MachineConfig::single_node(2)).with_memo_capacity(0);
    }

    #[test]
    fn horizontal_fusion_override() {
        let on = DiffuseConfig::fused(MachineConfig::single_node(2)).with_horizontal_fusion(true);
        assert!(on.enable_horizontal_fusion);
        let off = on.with_horizontal_fusion(false);
        assert!(!off.enable_horizontal_fusion);
    }

    #[test]
    fn executor_override() {
        let c = DiffuseConfig::fused(MachineConfig::single_node(2))
            .with_executor(ExecutorKind::WorkStealing { workers: Some(2) });
        assert_eq!(c.executor, ExecutorKind::WorkStealing { workers: Some(2) });
    }

    #[test]
    fn backend_override() {
        let c = DiffuseConfig::fused(MachineConfig::single_node(2))
            .with_backend(BackendKind::Closure);
        assert_eq!(c.backend, BackendKind::Closure);
    }

    #[test]
    fn analyze_override() {
        let c = DiffuseConfig::fused(MachineConfig::single_node(2))
            .with_analyze(AnalyzeMode::Inferred);
        assert_eq!(c.analyze, AnalyzeMode::Inferred);
        let c = c.with_analyze(AnalyzeMode::Declared);
        assert_eq!(c.analyze, AnalyzeMode::Declared);
        assert_eq!(AnalyzeMode::default(), AnalyzeMode::Declared);
    }

    #[test]
    fn verification_override() {
        let on = DiffuseConfig::fused(MachineConfig::single_node(2)).with_verification(true);
        assert!(on.enable_verification);
        let off = on.with_verification(false);
        assert!(!off.enable_verification);
    }
}
