//! First-class library registration: namespaces of kernel generators.
//!
//! A task-based library (the paper's cuPyNumeric, Legate Sparse — here the
//! `dense`, `sparse` and `stencil` crates) is written against the Diffuse
//! core alone: it registers a [`Library`] namespace on a
//! [`Context`](crate::Context), registers one named generator per operation,
//! and submits launches through the typed
//! [`LaunchBuilder`](crate::LaunchBuilder). Independently written libraries
//! registered on the same context share one task window, so their task
//! streams compose — and fuse — transparently (Section 2); the only thing
//! they exchange is [`StoreHandle`](crate::StoreHandle)s.
//!
//! See `docs/LIBRARIES.md` for the full how-to-write-a-library guide.

use std::cell::RefCell;
use std::rc::Rc;

use kernel::{GenArgs, KernelModule, LibraryId, TaskKind, TaskSignature};

use crate::context::ContextInner;

/// A registered library namespace on a [`Context`](crate::Context).
///
/// Operations registered through a library get `(LibraryId, op index)`-scoped
/// [`TaskKind`]s: two libraries can both register an `add` without sharing or
/// clobbering a kind, and the context attributes execution statistics per
/// library ([`crate::ExecutionStats::per_library`]).
///
/// Obtained from [`Context::register_library`](crate::Context::register_library)
/// or [`LibraryBuilder::build`]. Cloning shares the namespace.
#[derive(Clone)]
pub struct Library {
    pub(crate) id: LibraryId,
    pub(crate) name: String,
    pub(crate) inner: Rc<RefCell<ContextInner>>,
}

impl std::fmt::Debug for Library {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Library")
            .field("id", &self.id)
            .field("name", &self.name)
            .finish()
    }
}

impl Library {
    /// The library's id (the namespace half of its [`TaskKind`]s).
    pub fn id(&self) -> LibraryId {
        self.id
    }

    /// The library's registered name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Registers a named generator with its declared [`TaskSignature`],
    /// returning the namespaced task kind to launch it with.
    ///
    /// # Panics
    ///
    /// Panics if `name` is already registered in *this* library (the same
    /// name in another library is fine — kinds are namespaced).
    pub fn register<F>(&self, name: &str, signature: TaskSignature, generator: F) -> TaskKind
    where
        F: Fn(&GenArgs<'_>) -> KernelModule + Send + Sync + 'static,
    {
        self.inner
            .borrow_mut()
            .register_op(self.id, name, signature, generator)
    }

    /// Looks up a previously registered operation by name.
    pub fn kind(&self, name: &str) -> Option<TaskKind> {
        self.inner.borrow().lookup_op(self.id, name)
    }
}

/// Chained registration of a library and its operations.
///
/// ```
/// use diffuse::{Context, DiffuseConfig};
/// use kernel::{BufferId, BufferRole, KernelModule, LoopBuilder, TaskSignature};
/// use machine::MachineConfig;
///
/// let ctx = Context::new(DiffuseConfig::fused(MachineConfig::single_node(2)));
/// let lib = ctx
///     .library("mylib")
///     .op("double", TaskSignature::new().read().write(), |_args| {
///         let mut m = KernelModule::new(2);
///         m.set_role(BufferId(1), BufferRole::Output);
///         let mut b = LoopBuilder::new("double", BufferId(1));
///         let x = b.load(BufferId(0));
///         let two = b.constant(2.0);
///         let v = b.mul(x, two);
///         b.store(BufferId(1), v);
///         m.push_loop(b.finish());
///         m
///     })
///     .build();
/// assert_eq!(lib.name(), "mylib");
/// assert!(lib.kind("double").is_some());
/// ```
#[derive(Debug)]
pub struct LibraryBuilder {
    library: Library,
}

impl LibraryBuilder {
    pub(crate) fn new(library: Library) -> Self {
        LibraryBuilder { library }
    }

    /// Registers an operation (see [`Library::register`]) and continues the
    /// chain.
    pub fn op<F>(self, name: &str, signature: TaskSignature, generator: F) -> Self
    where
        F: Fn(&GenArgs<'_>) -> KernelModule + Send + Sync + 'static,
    {
        self.library.register(name, signature, generator);
        self
    }

    /// Finishes registration and returns the library handle.
    pub fn build(self) -> Library {
        self.library
    }
}
