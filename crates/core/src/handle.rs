//! Application-side store handles and the split reference count.

use std::cell::RefCell;
use std::rc::Rc;

use ir::StoreId;

use crate::context::ContextInner;

/// An application-side handle to a distributed store.
///
/// Cloning a handle increments the store's *application* reference count and
/// dropping it decrements it — the split reference counting scheme of
/// Section 5.1. A store with no live application references and no pending
/// readers is eligible for temporary-store elimination when it is produced
/// entirely inside a fused task.
#[derive(Debug)]
pub struct StoreHandle {
    pub(crate) id: StoreId,
    pub(crate) shape: Vec<u64>,
    pub(crate) inner: Rc<RefCell<ContextInner>>,
}

impl StoreHandle {
    /// The store's identifier (used to build [`ir::StoreArg`]s).
    pub fn id(&self) -> StoreId {
        self.id
    }

    /// The store's shape.
    pub fn shape(&self) -> &[u64] {
        &self.shape
    }

    /// Number of elements in the store.
    pub fn volume(&self) -> u64 {
        self.shape.iter().product()
    }

    /// Rank (number of dimensions).
    pub fn rank(&self) -> usize {
        self.shape.len()
    }
}

impl Clone for StoreHandle {
    fn clone(&self) -> Self {
        self.inner.borrow_mut().add_app_ref(self.id);
        StoreHandle {
            id: self.id,
            shape: self.shape.clone(),
            inner: Rc::clone(&self.inner),
        }
    }
}

impl Drop for StoreHandle {
    fn drop(&mut self) {
        self.inner.borrow_mut().drop_app_ref(self.id);
    }
}
