//! The Diffuse context: task window management, fusion, JIT and lowering.

use std::cell::RefCell;
use std::collections::{HashMap, HashSet, VecDeque};
use std::rc::Rc;
use std::sync::Arc;

use fusion::{
    explain_window_with, fusible_segments, plan_horizontal, temporary_stores, AdaptiveWindow,
    CanonicalWindow, DepClass, FusedTask, FusionViolation, MemoCache,
};
use ir::{
    Domain, IndexTask, Partition, PartitionId, Privilege, ShapeId, StoreArg, StoreId, TaskId,
    TaskWindow,
};
use kernel::{
    BufferId, BufferRole, CompileTimeModel, CompiledKernel, GenArgs, GeneratorRegistry,
    KernelBackend, KernelModule, LibraryId, Pipeline, PipelineConfig, TaskKind, TaskSignature,
};
use runtime::{
    AccessSummary, FaultSite, LaunchFailure, OverheadClass, Profile, RegionId, RegionRequirement,
    Runtime, RuntimeConfig, RuntimeError, TaskLaunch,
};

use crate::config::{AnalyzeMode, DiffuseConfig};
use crate::handle::StoreHandle;
use crate::launch::LaunchBuilder;
use crate::library::{Library, LibraryBuilder};
use crate::stats::{ExecutionStats, LibraryStats};

/// Metadata Diffuse keeps per store.
#[derive(Debug, Clone)]
struct StoreMeta {
    /// Interned shape; stamped onto every submitted argument so the fusion
    /// analyses never consult a side shape map.
    shape: ShapeId,
    name: String,
    /// Region backing the store, allocated lazily on first non-temporary use.
    region: Option<RegionId>,
    /// Live application references (the split reference count).
    app_refs: u64,
}

/// Cached analysis + compilation result for one canonical window. Each
/// context owns one cache created for its configured backend, so artifacts
/// are keyed by (canonical window, backend) by construction. The compiled
/// artifact is shared behind an `Arc` so a memoization hit clones a pointer,
/// not a buffer layout.
#[derive(Debug, Clone)]
struct MemoEntry {
    prefix_len: usize,
    compiled: Arc<CompiledArtifact>,
}

/// A backend-compiled fused kernel plus the complete **launch skeleton** it
/// was compiled under: everything a memoization hit needs to relaunch the
/// fused window without rebuilding the fused task — the merged arguments in
/// *canonical* store numbering (instantiated against the concrete window via
/// [`TaskWindow::canonical_store`]), their access volumes (a function of the
/// canonical window: shapes and partitions are part of the key), the fused
/// name and the buffer layout.
///
/// The layout — which fused args were demoted to task-local temporaries
/// (this fixes both the requirement/local split and the buffer permutation)
/// and how many generator locals follow — depends on store liveness, which
/// the canonical window does not capture. It is therefore recomputed per
/// launch and the artifact is reused only when it matches: a kernel compiled
/// with an eliminated temporary can never be resurrected for a window where
/// that store is live and must be written.
#[derive(Debug, Clone)]
struct CompiledArtifact {
    kernel: Arc<dyn CompiledKernel>,
    /// Fused name (`fused[a+b+...]`) of the window that was memoized. Task
    /// names are not part of the canonical key, so an isomorphic window
    /// with different task names relaunches under this name — profiles and
    /// diagnostics show the memoized window's name, which identifies the
    /// structure (and the kernel actually run) rather than the instance.
    name: String,
    /// Merged fused args as (canonical store index, partition, privilege).
    args: Vec<(u32, PartitionId, Privilege)>,
    /// Per-arg access volume over the launch domain.
    arg_volumes: Vec<usize>,
    /// Largest arg volume (sizes generator-introduced locals).
    max_vol: usize,
    is_temp: Vec<bool>,
    num_generator_locals: usize,
}

/// Internal, mutable state of a [`Context`]. Exposed to the crate so that
/// [`StoreHandle`] can maintain the application reference counts.
#[derive(Debug)]
pub struct ContextInner {
    config: DiffuseConfig,
    runtime: Runtime,
    registry: GeneratorRegistry,
    window: TaskWindow,
    adaptive: AdaptiveWindow,
    memo: MemoCache<MemoEntry>,
    backend: Arc<dyn KernelBackend>,
    compile_model: CompileTimeModel,
    stats: ExecutionStats,
    stores: HashMap<StoreId, StoreMeta>,
    next_store: u64,
    next_task: u64,
    /// Reusable per-launch scratch: (library, constituent-task count) pairs of
    /// the prefix being launched. Kept on the context so the hot launch path
    /// never allocates for attribution.
    lib_scratch: Vec<(u16, u32)>,
    /// Reusable launch-skeleton scratch, recovered from the previous
    /// memoized launch's [`TaskLaunch`] so the steady-state replay path
    /// allocates nothing for requirements, scalars or local buffer lengths.
    req_scratch: Vec<RegionRequirement>,
    scalar_scratch: Vec<f64>,
    len_scratch: Vec<usize>,
    /// Resolved concrete stores of the skeleton's canonical arg indices
    /// (cleared and refilled per memoized launch).
    store_scratch: Vec<StoreId>,
    /// Task kinds already run through the privilege-precision lint (the lint
    /// reports once per kind, not once per launch).
    linted_kinds: HashSet<u32>,
    /// Memoized footprint analysis per (task kind, launch-shape fingerprint):
    /// which arguments the analyzer can tighten to read and which have exact
    /// affine access summaries (see `kernel::analyze` and `docs/ANALYZE.md`).
    /// Filled once per distinct key; the per-submit cost after that is one
    /// hash probe.
    analysis: HashMap<(u32, u64), KindAnalysis, FpBuild>,
    /// Inferred module summaries memoized by module content fingerprint, so
    /// two task kinds generating the same kernel share one analysis.
    summaries: HashMap<u64, Arc<kernel::ModuleSummary>>,
    /// Per-launch failure records drained from the runtime across batch
    /// boundaries, kept until [`Context::take_failures`].
    batch_failures: Vec<LaunchFailure>,
}

/// Deterministic content key of a kernel module for the [`FaultSite::Compile`]
/// fault site: the same module degrades identically wherever and whenever it
/// is compiled, keeping injected compile-fault schedules executor- and
/// window-permutation-invariant (the key is a pure function of the module,
/// like the launch fingerprint is of the launch).
fn module_content_key(module: &KernelModule) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in format!("{module:?}").bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0100_0000_01b3);
    }
    h
}

/// Memoized result of the footprint analysis for one (task kind,
/// launch-shape) combination: per declared argument, whether the analyzer
/// narrows its privilege to read and whether its access summary is exact.
#[derive(Debug, Clone)]
struct KindAnalysis {
    tighten: Vec<bool>,
    exact: Vec<bool>,
}

/// Fingerprint of everything a task kind's generated module depends on: the
/// kind itself, each argument's interned shape and partition, the launch
/// domain, and the scalar parameters (all inputs of `GenArgs`). Pure integer
/// word-wise FNV-1a — no allocation and one multiply per word, because this
/// runs on every submission under [`AnalyzeMode::Inferred`] and the
/// `analysis_overhead` bench gates the whole probe below 2% of the warm
/// path.
fn analysis_key(task: &IndexTask) -> (u32, u64) {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    let mut mix = |v: u64| {
        h = (h ^ v).wrapping_mul(0x0100_0000_01b3);
    };
    for arg in &task.args {
        mix(arg.shape.index() as u64);
        mix(arg.partition.index() as u64);
    }
    for &d in task.launch_domain.shape() {
        mix(d);
    }
    for &s in &task.scalars {
        mix(s.to_bits());
    }
    (task.kind, h)
}

/// Hasher for maps keyed by already-mixed fingerprints (the analysis memo):
/// folds the written words FNV-style instead of paying SipHash on the
/// per-submit probe. Not DoS-resistant — fine for keys we compute ourselves.
#[derive(Default)]
struct FpHasher(u64);

impl std::hash::Hasher for FpHasher {
    fn finish(&self) -> u64 {
        self.0
    }
    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 = (self.0 ^ b as u64).wrapping_mul(0x0100_0000_01b3);
        }
    }
    fn write_u32(&mut self, v: u32) {
        self.write_u64(v as u64);
    }
    fn write_u64(&mut self, v: u64) {
        self.0 = (self.0 ^ v).wrapping_mul(0x0100_0000_01b3);
    }
}

type FpBuild = std::hash::BuildHasherDefault<FpHasher>;

impl ContextInner {
    /// Registers a library namespace, creating its statistics entry.
    pub(crate) fn register_library(&mut self, name: &str) -> LibraryId {
        let id = self.registry.register_library(name);
        self.stats.per_library.push(LibraryStats {
            library: name.to_string(),
            ..Default::default()
        });
        id
    }

    /// Registers a named generator in a library (see [`Library::register`]).
    pub(crate) fn register_op<F>(
        &mut self,
        library: LibraryId,
        name: &str,
        signature: TaskSignature,
        generator: F,
    ) -> TaskKind
    where
        F: Fn(&GenArgs<'_>) -> KernelModule + Send + Sync + 'static,
    {
        self.registry.register_op_fn(library, name, signature, generator)
    }

    /// Looks up an operation by name within a library.
    pub(crate) fn lookup_op(&self, library: LibraryId, name: &str) -> Option<TaskKind> {
        self.registry.lookup(library, name)
    }

    /// Tallies the libraries contributing to a prefix into the reusable
    /// scratch: one `(library, task count)` pair per distinct library.
    fn collect_libraries(scratch: &mut Vec<(u16, u32)>, tasks: &[IndexTask]) {
        scratch.clear();
        for t in tasks {
            let lib = (t.kind >> 16) as u16;
            match scratch.iter_mut().find(|(l, _)| *l == lib) {
                Some((_, c)) => *c += 1,
                None => scratch.push((lib, 1)),
            }
        }
    }

    /// Attributes one launch to the libraries tallied in `lib_scratch`:
    /// launch counts, cross-library participation, and the launch's simulated
    /// time split proportionally to each library's constituent-task count.
    fn attribute_launch(&mut self, total_tasks: u32, elapsed_delta: f64) {
        let cross = self.lib_scratch.len() > 1;
        if cross {
            self.stats.cross_library_fused_tasks += 1;
        }
        for &(lib, count) in &self.lib_scratch {
            if let Some(ls) = self.stats.per_library.get_mut(lib as usize) {
                ls.launches += 1;
                if cross {
                    ls.cross_library_launches += 1;
                }
                ls.simulated_time += elapsed_delta * count as f64 / total_tasks.max(1) as f64;
            }
        }
    }

    pub(crate) fn add_app_ref(&mut self, id: StoreId) {
        if let Some(meta) = self.stores.get_mut(&id) {
            meta.app_refs += 1;
        }
    }

    pub(crate) fn drop_app_ref(&mut self, id: StoreId) {
        if let Some(meta) = self.stores.get_mut(&id) {
            meta.app_refs = meta.app_refs.saturating_sub(1);
        }
    }

    /// Number of elements a (store, partition) argument touches over a launch
    /// domain: the volume of the bounding box of its sub-stores.
    fn access_volume(&self, store: StoreId, partition: &Partition, domain: &Domain) -> usize {
        let shape: &[u64] = &self.stores[&store].shape;
        match partition {
            Partition::Replicate => shape.iter().product::<u64>() as usize,
            Partition::Tiling { .. } => {
                let mut acc: Option<ir::Rect> = None;
                for p in domain.points() {
                    let r = partition.sub_store_bounds(shape, &p);
                    if r.is_empty() {
                        continue;
                    }
                    acc = Some(match acc {
                        None => r,
                        Some(prev) => ir::Rect::new(
                            prev.lo.iter().zip(&r.lo).map(|(&a, &b)| a.min(b)).collect(),
                            prev.hi.iter().zip(&r.hi).map(|(&a, &b)| a.max(b)).collect(),
                        ),
                    });
                }
                acc.map(|r| r.volume() as usize).unwrap_or(0)
            }
        }
    }

    /// Ensures a store has a backing region, allocating it lazily.
    fn ensure_region(&mut self, store: StoreId) -> RegionId {
        let meta = self.stores.get_mut(&store).expect("unknown store");
        if let Some(r) = meta.region {
            return r;
        }
        let region = self
            .runtime
            .allocate_region(meta.shape.to_vec(), meta.name.clone());
        self.stores.get_mut(&store).unwrap().region = Some(region);
        region
    }

    /// Frees regions of stores with no application references once the window
    /// no longer mentions them.
    fn sweep_dead_stores(&mut self) {
        let pending: HashSet<StoreId> = self
            .window
            .tasks()
            .iter()
            .flat_map(|t| t.stores())
            .collect();
        let dead: Vec<StoreId> = self
            .stores
            .iter()
            .filter(|(id, m)| m.app_refs == 0 && m.region.is_some() && !pending.contains(id))
            .map(|(id, _)| *id)
            .collect();
        for id in dead {
            if let Some(region) = self.stores.get_mut(&id).and_then(|m| m.region.take()) {
                let _ = self.runtime.free_region(region);
            }
        }
    }

    /// Access volume of each of a task's store arguments over its launch
    /// domain — the buffer lengths its generator (and the verifier) sees.
    fn task_arg_lens(&self, task: &IndexTask) -> Vec<usize> {
        task.args
            .iter()
            .map(|a| self.access_volume(a.store, &a.partition, &task.launch_domain))
            .collect()
    }

    /// Generates the kernel module for a single task, given the argument
    /// buffer lengths from [`ContextInner::task_arg_lens`].
    fn generate_task_module(&self, task: &IndexTask, arg_lens: &[usize]) -> KernelModule {
        let args = GenArgs {
            buffer_lens: arg_lens,
            scalars: &task.scalars,
        };
        self.registry
            .generate(TaskKind::decode(task.kind), &args)
            .unwrap_or_else(|| {
                panic!(
                    "no generator registered for task kind {}",
                    TaskKind::decode(task.kind)
                )
            })
    }

    /// Kernel-level verification of one generated task module: IR/micro-op
    /// invariants with the concrete buffer lengths, consistency against the
    /// task kind's declared [`TaskSignature`], and the once-per-kind
    /// privilege-precision lint. Returns the rendered violation (routed by
    /// the caller through [`ContextInner::verify_violation`]); lint findings
    /// only warn (over-broad privileges are legal — they just inhibit
    /// fusion).
    fn verify_task_module(
        &mut self,
        task: &IndexTask,
        module: &KernelModule,
        lens: &[usize],
    ) -> Result<(), String> {
        let mut checks = kernel::verify::verify_module(module, Some(lens)).map_err(|e| {
            format!("kernel module of `{}` violates an IR invariant: {e}", task.name)
        })?;
        let kind = TaskKind::decode(task.kind);
        let mut lints = Vec::new();
        if let Some(sig) = self.registry.signature(kind) {
            checks += kernel::verify::verify_against_signature(module, sig).map_err(|e| {
                format!(
                    "kernel of `{}` is inconsistent with its declared signature: {e}",
                    task.name
                )
            })?;
            // Independent cross-check of the analyzer (the PR contract of
            // `AnalyzeMode::Inferred`): every tightened signature must itself
            // survive the translation validator — a read argument the kernel
            // stores or reduces to would be an analyzer soundness bug and
            // fails loudly here.
            if self.config.analyze == AnalyzeMode::Inferred {
                let eff = kernel::analyze::effective_signature(module, sig);
                if eff.is_tightened() {
                    checks += kernel::verify::verify_against_signature(module, &eff.to_signature())
                        .map_err(|e| {
                            format!(
                                "analyzer-tightened signature of `{}` failed independent \
                                 re-verification: {e}",
                                task.name
                            )
                        })?;
                }
            }
            if !self.linted_kinds.contains(&task.kind) {
                lints = kernel::verify::lint_privilege_precision(module, sig);
            }
        }
        if self.linted_kinds.insert(task.kind) {
            for lint in lints {
                self.stats.privilege_lint_warnings += 1;
                eprintln!("diffuse-verify: lint: `{}`: {lint}", task.name);
            }
        }
        self.stats.verification_checks += checks as u64;
        Ok(())
    }

    /// Runs the footprint analyzer over `task`'s generated kernel and
    /// memoizes the result under [`analysis_key`]. The module summary itself
    /// is additionally shared by module content fingerprint, so two kinds
    /// generating identical kernels analyze once. No-op on a cache hit.
    fn ensure_analysis(&mut self, task: &IndexTask) {
        self.ensure_analysis_keyed(analysis_key(task), task);
    }

    /// [`ensure_analysis`](Self::ensure_analysis) with the key already
    /// computed — the per-submit tightening path computes it once and reuses
    /// it for the lookup after the (usually hitting) insertion probe.
    fn ensure_analysis_keyed(&mut self, key: (u32, u64), task: &IndexTask) {
        if self.analysis.contains_key(&key) {
            return;
        }
        let lens = self.task_arg_lens(task);
        let module = self.generate_task_module(task, &lens);
        let summary = match self.summaries.entry(module_content_key(&module)) {
            std::collections::hash_map::Entry::Occupied(e) => Arc::clone(e.get()),
            std::collections::hash_map::Entry::Vacant(e) => {
                Arc::clone(e.insert(Arc::new(kernel::infer_footprint(&module))))
            }
        };
        let num_args = task.args.len();
        let exact: Vec<bool> = (0..num_args).map(|i| summary.buffer(i).is_exact()).collect();
        let mut tighten = vec![false; num_args];
        if let Some(sig) = self.registry.signature(TaskKind::decode(task.kind)) {
            let eff = kernel::analyze::effective_signature_from_summary(&summary, sig);
            for (arg, _, _) in eff.tightened() {
                if arg < num_args {
                    tighten[arg] = true;
                }
            }
        }
        self.analysis.insert(key, KindAnalysis { tighten, exact });
    }

    /// Whether the kernel-level access summary for `task`'s argument `arg` is
    /// exact (no ⊤ component) — the precondition for classifying a dependence
    /// edge with a constant distance. Reads the memoized analysis only; an
    /// unanalyzed kind is conservatively inexact.
    fn arg_is_exact(&self, task: &IndexTask, arg: usize) -> bool {
        self.analysis
            .get(&analysis_key(task))
            .is_some_and(|a| a.exact.get(arg).copied().unwrap_or(false))
    }

    /// Narrows `task`'s declared privileges to what its kernel provably
    /// exercises ([`AnalyzeMode::Inferred`] only): a declared
    /// write/read-write/reduce argument whose kernel never stores or reduces
    /// to the buffer becomes a read. The runtime's copy-in is unconditional,
    /// so the narrowing only skips a bit-identical write-back — results are
    /// bitwise unchanged while phantom-privilege windows fuse.
    fn tighten_task(&mut self, task: &mut IndexTask) {
        let key = analysis_key(task);
        if !self.analysis.contains_key(&key) {
            self.ensure_analysis_keyed(key, task);
        }
        let Some(analysis) = self.analysis.get(&key) else {
            return;
        };
        let mut tightened = 0;
        for (arg, tighten) in task.args.iter_mut().zip(&analysis.tighten) {
            if *tighten && (arg.privilege.writes() || arg.privilege.reduces()) {
                arg.privilege = Privilege::Read;
                tightened += 1;
            }
        }
        self.stats.privileges_tightened += tightened;
    }

    /// One-pass fusible segmentation of the window (miss path only) with the
    /// why-not explainer over every split boundary: each rejection is
    /// classified ([`DepClass`]) and counted in the per-class rejection
    /// stats. Kinds in the window are analyzed (memoized) first so the
    /// classifier knows which access summaries are exact.
    fn classify_and_segment(&mut self) -> VecDeque<usize> {
        for i in 0..self.window.len() {
            if !self
                .analysis
                .contains_key(&analysis_key(&self.window.tasks()[i]))
            {
                let task = self.window.tasks()[i].clone();
                self.ensure_analysis(&task);
            }
        }
        let report = {
            let this: &ContextInner = self;
            explain_window_with(this.window.tasks(), &|t, arg| this.arg_is_exact(t, arg))
        };
        for boundary in &report.boundaries {
            match (&boundary.violation, &boundary.class) {
                (FusionViolation::LaunchDomainMismatch { .. }, _) => {
                    self.stats.rejections_domain_mismatch += 1;
                }
                (FusionViolation::Reduction { .. }, _) => {
                    self.stats.rejections_reduction += 1;
                }
                (_, Some(DepClass::Carried { .. })) => self.stats.rejections_carried += 1,
                _ => self.stats.rejections_unknown += 1,
            }
        }
        report.segments.into()
    }

    /// A structured why-not report over the currently buffered window: the
    /// fusible segmentation plus, per split boundary, the violated
    /// constraint, the dependence classification, and what change would
    /// admit fusion. Does not flush or otherwise perturb the window.
    pub(crate) fn explain_window(&mut self) -> fusion::WindowReport {
        for i in 0..self.window.len() {
            if !self
                .analysis
                .contains_key(&analysis_key(&self.window.tasks()[i]))
            {
                let task = self.window.tasks()[i].clone();
                self.ensure_analysis(&task);
            }
        }
        let this: &ContextInner = self;
        explain_window_with(this.window.tasks(), &|t, arg| this.arg_is_exact(t, arg))
    }

    /// Backend-lowering verification of a module that is about to be (or
    /// was) compiled for real execution: re-lowers each loop through the
    /// configured backend's path and checks register SSA/disjointness.
    fn verify_lowered(&mut self, name: &str, module: &KernelModule) -> Result<(), String> {
        let checks = kernel::verify::verify_lowering(module, self.config.backend).map_err(|e| {
            format!(
                "{:?} lowering of `{name}` violates an invariant: {e}",
                self.config.backend
            )
        })?;
        self.stats.verification_checks += checks as u64;
        Ok(())
    }

    /// Routes one verifier violation according to the fail-fast bit.
    ///
    /// With `verify_fail_fast` on (the default in debug builds) the
    /// violation panics at the check site — the historical behavior, kept so
    /// test suites stop at the first broken invariant. With it off the
    /// violation becomes a structured [`RuntimeError::Verify`] recorded
    /// against the launch: its dependence cone (everything downstream of
    /// `accesses`) is poisoned and skipped, independent work proceeds, and
    /// the record is retrievable via [`Context::take_failures`].
    fn verify_violation(&mut self, launch: &str, detail: String, accesses: &[AccessSummary]) {
        if self.config.verify_fail_fast {
            panic!("diffuse-verify: {detail}");
        }
        eprintln!("diffuse-verify: contained: verification of `{launch}` failed: {detail}");
        let error = RuntimeError::Verify {
            launch: launch.to_string(),
            detail,
        };
        self.runtime.poison_launch(launch, accesses, error);
    }

    /// Access summaries of a launch's store arguments (allocating backing
    /// regions as needed) — the hazard set a contained verification failure
    /// poisons.
    fn poison_accesses(&mut self, args: &[(StoreId, Privilege)]) -> Vec<AccessSummary> {
        args.iter()
            .map(|&(store, privilege)| {
                let region = self.ensure_region(store);
                AccessSummary::from_privilege(region, privilege)
            })
            .collect()
    }

    /// Contains a verification failure of a built fused task: the launch is
    /// never executed; its would-be accesses poison the dependence cone.
    fn poison_fused(&mut self, fused: &FusedTask, detail: String) {
        let args: Vec<(StoreId, Privilege)> =
            fused.args.iter().map(|(s, _, pr)| (*s, *pr)).collect();
        let accesses = self.poison_accesses(&args);
        self.verify_violation(&fused.name, detail, &accesses);
    }

    /// Contains a verification failure of a planned (not yet drained) fused
    /// prefix: drains it — it will not be launched — and fails its cone.
    fn poison_fused_prefix(&mut self, prefix_len: usize, detail: String) {
        let prefix = self.window.drain_prefix(prefix_len);
        let fused = FusedTask::build(prefix);
        self.poison_fused(&fused, detail);
    }

    /// Compiles a module into a launchable artifact. Simulation-only
    /// contexts never run functional work — the artifact is only priced
    /// through its module — so they skip real backend lowering and wrap
    /// with the interpreter regardless of the configured backend, whose
    /// `compile_cost` hook still prices the simulated JIT for the clock.
    ///
    /// Under an active fault plan, [`FaultSite::Compile`] faults degrade the
    /// backend down the simd → closure → interp chain (`BackendKind::
    /// fallback`): each injected failure's JIT work is still charged to
    /// `compile_time` before the next tier retries, and the interpreter is
    /// terminal (its "compilation" is a wrap that cannot fail). Faults are
    /// keyed by module content with the tier index as the attempt, so an
    /// identical module degrades identically under any executor, backend
    /// memoization state or window permutation — and the memoized artifact
    /// (keyed by `(CanonicalWindow, backend)` through the per-context cache)
    /// simply carries the degraded tier's kernel.
    fn compile_artifact(&mut self, name: &str, module: &KernelModule) -> Arc<dyn CompiledKernel> {
        if !self.config.materialize_data {
            return kernel::compile_interp(module.clone());
        }
        let mut kind = self.config.backend;
        let mut backend = Arc::clone(&self.backend);
        if let Some(plan) = self.config.fault_plan.filter(|p| p.rate() > 0.0) {
            let key = module_content_key(module);
            let mut tier = 0u32;
            while plan.should_fault(FaultSite::Compile, key, tier) {
                let Some(fb) = kind.fallback() else {
                    break;
                };
                self.stats.faults_injected += 1;
                // The failed tier's JIT work is not free: it is paid for and
                // then thrown away, like a real compiler crash mid-build.
                self.stats.compile_time += backend.compile_cost(module, &self.compile_model);
                kind = fb;
                backend = fb.backend();
                tier += 1;
            }
            if tier > 0 {
                self.stats.degraded_launches += 1;
                eprintln!(
                    "diffuse-chaos: compile of `{name}` degraded {} -> {} after {tier} injected \
                     compile fault(s)",
                    self.config.backend.id(),
                    kind.id()
                );
            }
        }
        backend.compile(module).expect("kernel compilation failed")
    }

    /// Launches a single task without fusion. The module is compiled through
    /// the configured backend but charges no simulated compile time: the
    /// unfused baseline models a library of pre-compiled per-task kernels
    /// (only fused windows pay the JIT, as in the paper).
    fn launch_unfused(&mut self, task: IndexTask) {
        Self::collect_libraries(&mut self.lib_scratch, std::slice::from_ref(&task));
        let arg_lens = self.task_arg_lens(&task);
        let module = self.generate_task_module(&task, &arg_lens);
        let max_arg = arg_lens.iter().copied().max().unwrap_or(1);
        let num_locals = module.num_buffers() as usize - task.args.len();
        let local_lens = vec![max_arg; num_locals];
        if self.config.enable_verification {
            let mut lens = arg_lens;
            lens.extend(local_lens.iter().copied());
            let verdict = self
                .verify_task_module(&task, &module, &lens)
                .and_then(|()| self.verify_lowered(&task.name, &module));
            if let Err(detail) = verdict {
                let args: Vec<(StoreId, Privilege)> =
                    task.args.iter().map(|a| (a.store, a.privilege)).collect();
                let accesses = self.poison_accesses(&args);
                self.verify_violation(&task.name, detail, &accesses);
                return;
            }
        }
        let requirements: Vec<RegionRequirement> = task
            .args
            .iter()
            .map(|a| {
                let region = self.ensure_region(a.store);
                RegionRequirement::new(region, a.partition, a.privilege)
            })
            .collect();
        let launch = TaskLaunch {
            name: task.name.clone(),
            launch_domain: task.launch_domain.clone(),
            requirements,
            kernel: self.compile_artifact(&task.name, &module),
            scalars: task.scalars.clone(),
            local_buffer_lens: local_lens,
            overhead: OverheadClass::TaskRuntime,
        };
        let t0 = self.runtime.elapsed();
        self.runtime.execute(&launch).expect("launch failed");
        let delta = self.runtime.elapsed() - t0;
        self.stats.tasks_launched += 1;
        self.attribute_launch(1, delta);
    }

    /// Composes, optimizes, compiles (or reuses a memoized compiled
    /// artifact) and launches a fused task built from the first `prefix_len`
    /// buffered tasks.
    ///
    /// On a memoization hit the backend is not consulted at all — the cached
    /// `Arc<dyn CompiledKernel>` is launched directly and no compile time is
    /// charged. On a miss the fused module is composed, optimized, remapped
    /// into launch layout and compiled by the configured backend, which
    /// prices the one-time work via [`KernelBackend::compile_cost`]; the
    /// artifact is then memoized under `memo_key` (the canonical form of the
    /// whole window at probe time).
    fn launch_fused(
        &mut self,
        prefix_len: usize,
        cached: Option<Arc<CompiledArtifact>>,
        memo_key: Option<CanonicalWindow>,
    ) {
        // Re-derive the dependence edges of the planned prefix and check the
        // fusion decision preserves them (translation validation of the
        // window analysis — see `fusion::verify`).
        if self.config.enable_verification {
            match fusion::verify_fused_prefix(&self.window.tasks()[..prefix_len]) {
                Ok(checks) => self.stats.verification_checks += checks as u64,
                Err(e) => {
                    let detail =
                        format!("planned fused prefix violates a dependence invariant: {e}");
                    self.poison_fused_prefix(prefix_len, detail);
                    return;
                }
            }
        }

        // Liveness (which fused args become task-local temporaries) is the
        // only launch input the canonical window does not determine, so it
        // is recomputed per launch — over borrowed window slices, before
        // anything is drained or built.
        let (prefix_slice, pending) = self.window.tasks().split_at(prefix_len);
        let temps: HashSet<StoreId> = if self.config.enable_temp_elimination {
            let stores = &self.stores;
            temporary_stores(prefix_slice, pending, |s| {
                stores.get(&s).map(|m| m.app_refs > 0).unwrap_or(false)
            })
        } else {
            HashSet::new()
        };

        if let Some(art) = &cached {
            // Layout check: the cached artifact was compiled under a
            // particular temporary split; relaunch it directly only if the
            // current liveness agrees. The artifact's canonical indices were
            // assigned over the prefix, which is a prefix of the whole
            // window's first-occurrence numbering, so they resolve through
            // the window's numbering unchanged.
            let layout_matches = art
                .args
                .iter()
                .zip(&art.is_temp)
                .all(|((ci, _, _), &was_temp)| {
                    let store = self
                        .window
                        .canonical_store(*ci as usize)
                        .expect("cached entry verified against this window");
                    temps.contains(&store) == was_temp
                });
            if layout_matches {
                let art = Arc::clone(art);
                self.launch_from_skeleton(prefix_len, &art);
                return;
            }
        }

        // Miss, or a liveness drift on a hit — which recompiles
        // conservatively and re-memoizes. The fast path skipped key
        // construction, so a drift rebuilds the probed window's key here
        // (drift is rare; the steady state never pays this).
        let memo_key = memo_key.or_else(|| {
            if cached.is_some() && self.config.enable_memoization {
                Some(CanonicalWindow::new(self.window.tasks()))
            } else {
                None
            }
        });
        Self::collect_libraries(&mut self.lib_scratch, &self.window.tasks()[..prefix_len]);
        let prefix = self.window.drain_prefix(prefix_len);
        let fused = FusedTask::build(prefix);

        // Which fused args are temporaries (become task-local buffers).
        let is_temp: Vec<bool> = fused.args.iter().map(|(s, _, _)| temps.contains(s)).collect();
        let domain = &fused.launch_domain;
        let arg_volumes: Vec<usize> = fused
            .args
            .iter()
            .map(|(s, p, _)| self.access_volume(*s, p, domain))
            .collect();
        let max_vol = arg_volumes.iter().copied().max().unwrap_or(1);

        // Launch buffer layout: non-temporary args first (they become region
        // requirements), then temporary args (task-local buffers), then
        // generator-introduced locals.
        let build_remap = |num_generator_locals: usize| -> Vec<BufferId> {
            let mut remap = vec![BufferId(0); fused.args.len() + num_generator_locals];
            let mut next = 0u32;
            for (i, _) in fused.args.iter().enumerate() {
                if !is_temp[i] {
                    remap[i] = BufferId(next);
                    next += 1;
                }
            }
            for (i, _) in fused.args.iter().enumerate() {
                if is_temp[i] {
                    remap[i] = BufferId(next);
                    next += 1;
                }
            }
            for j in 0..num_generator_locals {
                remap[fused.args.len() + j] = BufferId(next);
                next += 1;
            }
            remap
        };

        let (module, generator_local_lens) =
            match self.compose_and_optimize(&fused, &is_temp, &arg_volumes) {
                Ok(v) => v,
                Err(detail) => {
                    self.poison_fused(&fused, detail);
                    return;
                }
            };
        if self.config.enable_verification {
            // The optimized composite, still in fused-arg numbering: check
            // IR invariants against the concrete buffer lengths the pipeline
            // was given.
            let mut lens = arg_volumes.clone();
            lens.extend(generator_local_lens.iter().copied());
            match kernel::verify::verify_module(&module, Some(&lens)) {
                Ok(checks) => self.stats.verification_checks += checks as u64,
                Err(e) => {
                    let detail = format!(
                        "optimized module of `{}` violates an IR invariant: {e}",
                        fused.name
                    );
                    self.poison_fused(&fused, detail);
                    return;
                }
            }
        }
        let remap = build_remap(generator_local_lens.len());
        let module = module.remap_buffers(&remap);
        if self.config.enable_verification {
            // The launch-layout module is what the backend actually lowers.
            if let Err(detail) = self.verify_lowered(&fused.name, &module) {
                self.poison_fused(&fused, detail);
                return;
            }
        }
        let kernel = self.compile_artifact(&fused.name, &module);
        if let Some(key) = memo_key {
            // (Re)memoize the complete launch skeleton so the next
            // isomorphic window relaunches without rebuilding any of it.
            // Canonical indices are assigned by first occurrence across the
            // prefix (a prefix of the window numbering the probe verifies
            // against).
            let mut canon: HashMap<StoreId, u32> = HashMap::new();
            for t in &fused.tasks {
                for a in &t.args {
                    let next = canon.len() as u32;
                    canon.entry(a.store).or_insert(next);
                }
            }
            let canonical_args: Vec<(u32, PartitionId, Privilege)> = fused
                .args
                .iter()
                .map(|(s, p, pr)| (canon[s], *p, *pr))
                .collect();
            self.memo.insert(
                key,
                MemoEntry {
                    prefix_len,
                    compiled: Arc::new(CompiledArtifact {
                        kernel: Arc::clone(&kernel),
                        name: fused.name.clone(),
                        args: canonical_args,
                        arg_volumes: arg_volumes.clone(),
                        max_vol,
                        is_temp: is_temp.clone(),
                        num_generator_locals: generator_local_lens.len(),
                    }),
                },
            );
        }

        let mut requirements = Vec::new();
        let mut local_lens = Vec::new();
        for (i, (store, part, priv_)) in fused.args.iter().enumerate() {
            if !is_temp[i] {
                let region = self.ensure_region(*store);
                requirements.push(RegionRequirement::new(region, *part, *priv_));
            }
        }
        for (i, _) in fused.args.iter().enumerate() {
            if is_temp[i] {
                local_lens.push(arg_volumes[i].max(1));
            }
        }
        for &len in &generator_local_lens {
            local_lens.push(len.max(1));
        }

        // Statistics for temporaries whose distributed allocation never
        // happened.
        for (i, (store, _, _)) in fused.args.iter().enumerate() {
            if is_temp[i] {
                self.stats.temporaries_eliminated += 1;
                if self.stores[store].region.is_none() {
                    self.stats.distributed_allocations_avoided += 1;
                }
            }
        }

        let scalars: Vec<f64> = fused
            .tasks
            .iter()
            .flat_map(|t| t.scalars.iter().copied())
            .collect();
        let launch = TaskLaunch {
            name: fused.name.clone(),
            launch_domain: fused.launch_domain.clone(),
            requirements,
            kernel,
            scalars,
            local_buffer_lens: local_lens,
            overhead: OverheadClass::TaskRuntime,
        };
        let t0 = self.runtime.elapsed();
        self.runtime.execute(&launch).expect("fused launch failed");
        let delta = self.runtime.elapsed() - t0;
        self.stats.tasks_launched += 1;
        if fused.len() > 1 {
            self.stats.fused_tasks += 1;
        }
        self.attribute_launch(prefix_len as u32, delta);
    }

    /// The memoization-hit fast path: instantiates a cached launch skeleton
    /// against the current window's concrete stores. No fused task is built,
    /// no access volumes are computed and no name is assembled — the only
    /// per-launch work is resolving canonical indices to store ids, ensuring
    /// backing regions and gathering scalars.
    fn launch_from_skeleton(&mut self, prefix_len: usize, art: &CompiledArtifact) {
        Self::collect_libraries(&mut self.lib_scratch, &self.window.tasks()[..prefix_len]);
        // A fingerprint probe found this skeleton; check the replayed
        // structure actually matches the probe window (a fingerprint
        // collision would be caught here, by construction).
        if self.config.enable_verification {
            match fusion::verify_skeleton(&self.window.tasks()[..prefix_len], &art.args) {
                Ok(checks) => self.stats.verification_checks += checks as u64,
                Err(e) => {
                    let detail = format!(
                        "memo-replayed skeleton `{}` does not match the probe window: {e}",
                        art.name
                    );
                    self.poison_fused_prefix(prefix_len, detail);
                    return;
                }
            }
        }
        let prefix = &self.window.tasks()[..prefix_len];
        let launch_domain = prefix[0].launch_domain.clone();
        let mut scalars = std::mem::take(&mut self.scalar_scratch);
        scalars.extend(prefix.iter().flat_map(|t| t.scalars.iter().copied()));
        // Resolve the skeleton's canonical store indices against this window
        // before draining (draining renumbers the remaining suffix).
        let mut arg_stores = std::mem::take(&mut self.store_scratch);
        arg_stores.extend(art.args.iter().map(|(ci, _, _)| {
            self.window
                .canonical_store(*ci as usize)
                .expect("cached entry verified against this window")
        }));
        drop(self.window.drain_prefix(prefix_len));

        let mut requirements = std::mem::take(&mut self.req_scratch);
        let mut local_lens = std::mem::take(&mut self.len_scratch);
        for (i, ((_, part, priv_), store)) in art.args.iter().zip(&arg_stores).enumerate() {
            if !art.is_temp[i] {
                let region = self.ensure_region(*store);
                requirements.push(RegionRequirement::new(region, *part, *priv_));
            }
        }
        for (i, store) in arg_stores.iter().enumerate() {
            if art.is_temp[i] {
                local_lens.push(art.arg_volumes[i].max(1));
                self.stats.temporaries_eliminated += 1;
                if self.stores[store].region.is_none() {
                    self.stats.distributed_allocations_avoided += 1;
                }
            }
        }
        for _ in 0..art.num_generator_locals {
            local_lens.push(art.max_vol.max(1));
        }

        let launch = TaskLaunch {
            name: art.name.clone(),
            launch_domain,
            requirements,
            kernel: Arc::clone(&art.kernel),
            scalars,
            local_buffer_lens: local_lens,
            overhead: OverheadClass::TaskRuntime,
        };
        let t0 = self.runtime.elapsed();
        self.runtime.execute(&launch).expect("fused launch failed");
        let delta = self.runtime.elapsed() - t0;
        // Recover the launch's vectors for the next replay: this path is the
        // steady state, and reuse keeps it free of per-launch allocations
        // for requirements, scalars and buffer lengths.
        let TaskLaunch {
            mut requirements,
            mut scalars,
            mut local_buffer_lens,
            ..
        } = launch;
        requirements.clear();
        scalars.clear();
        local_buffer_lens.clear();
        arg_stores.clear();
        self.req_scratch = requirements;
        self.scalar_scratch = scalars;
        self.len_scratch = local_buffer_lens;
        self.store_scratch = arg_stores;
        self.stats.tasks_launched += 1;
        if prefix_len > 1 {
            self.stats.fused_tasks += 1;
        }
        self.attribute_launch(prefix_len as u32, delta);
    }

    /// Generates every constituent task's kernel, composes them in program
    /// order, and runs the optimization pipeline. Returns the optimized module
    /// (buffer ids: fused args then generator locals) and the lengths of the
    /// generator-introduced locals. Charges JIT compilation time through the
    /// backend's cost hook (priced from the composed, pre-optimization module
    /// — the backend lowers the whole pipeline input).
    fn compose_and_optimize(
        &mut self,
        fused: &FusedTask,
        is_temp: &[bool],
        arg_volumes: &[usize],
    ) -> Result<(KernelModule, Vec<usize>), String> {
        let mut module = KernelModule::new(fused.args.len() as u32);
        for (i, (_, _, priv_)) in fused.args.iter().enumerate() {
            let role = if is_temp[i] {
                BufferRole::Local
            } else if priv_.reduces() {
                BufferRole::Reduction
            } else if priv_.writes() && priv_.reads() {
                BufferRole::InOut
            } else if priv_.writes() {
                BufferRole::Output
            } else {
                BufferRole::Input
            };
            module.set_role(BufferId(i as u32), role);
        }
        let mut generator_local_lens: Vec<usize> = Vec::new();
        let mut scalar_offset = 0usize;
        for (ti, task) in fused.tasks.iter().enumerate() {
            let arg_lens = self.task_arg_lens(task);
            let mut body = self.generate_task_module(task, &arg_lens);
            let max_arg_vol = arg_lens.iter().copied().max().unwrap_or(1);
            if self.config.enable_verification {
                // Each constituent generator's output is checked before it
                // is composed: arity/role consistency against the declared
                // signature, SSA and bounds against the lengths it was
                // generated for.
                let mut lens = arg_lens;
                let num_locals = body.num_buffers() as usize - task.args.len();
                lens.extend(std::iter::repeat_n(max_arg_vol, num_locals));
                self.verify_task_module(task, &body, &lens)?;
            }
            body.offset_params(scalar_offset);
            scalar_offset += task.scalars.len();
            // Remap: generator buffers 0..args -> fused arg positions;
            // generator locals -> fresh locals in the fused module.
            let mut map: Vec<BufferId> = fused.arg_map[ti]
                .iter()
                .map(|&i| BufferId(i as u32))
                .collect();
            for _ in task.args.len()..body.num_buffers() as usize {
                let local = module.add_local();
                map.push(local);
                generator_local_lens.push(max_arg_vol);
            }
            let remapped = body.remap_buffers(&map);
            module.append(remapped);
        }
        // Charge JIT time for the composed module through the backend's hook.
        self.stats.compile_time += self.backend.compile_cost(&module, &self.compile_model);
        self.stats.compilations += 1;

        // Buffer lengths for the pipeline: fused arg volumes then locals.
        let mut lens: Vec<usize> = arg_volumes.to_vec();
        lens.extend(generator_local_lens.iter().copied());
        let pipeline_config = if self.config.enable_kernel_fusion {
            PipelineConfig::default()
        } else {
            PipelineConfig {
                parallelize: true,
                ..PipelineConfig::disabled()
            }
        };
        // Alias pairs: fused args backed by the same store through different
        // partitions must not be loop-fused (they may overlap in memory).
        let compiled = Pipeline::new(pipeline_config).run(module, &lens);
        Ok((compiled.module, generator_local_lens))
    }

    /// Processes the entire buffered window: repeatedly extract a fusible
    /// prefix (or a single task) and launch it.
    ///
    /// The hot path is allocation-free up to the launch itself: the memo
    /// lookup probes by the window's incrementally maintained fingerprint
    /// (no `CanonicalWindow` is built on a hit), and on misses the fusible
    /// segmentation of the whole window is computed **once** and consumed
    /// front to back, so draining a prefix never re-checks the untouched
    /// suffix.
    fn process_window(&mut self) {
        // Horizontal pass (when enabled): segment the window vertically,
        // pack independent equal-domain segments into launch groups, and
        // reorder the window so each group is contiguous. The vertical
        // analysis below then fuses every group into one wide launch; the
        // memo probe keys on the *permuted* canonical stream, so isomorphic
        // batches replay the packed skeleton regardless of submission order.
        if self.config.enable_task_fusion
            && self.config.enable_horizontal_fusion
            && self.window.len() > 1
        {
            let segments = fusible_segments(self.window.tasks());
            if segments.len() > 1 {
                let plan = plan_horizontal(self.window.tasks(), &segments);
                if !plan.is_identity() {
                    // Independently re-check the planner's claims: every
                    // launch group is pairwise independent (write-disjoint
                    // with matching domains), and the reorder it implies
                    // never flips a dependent pair. A contained violation
                    // (fail-fast off) records the failure and skips the
                    // reorder — the un-permuted window is always legal, so
                    // the plan degrades to vertical-only fusion rather than
                    // failing any launch.
                    let mut plan_ok = true;
                    if self.config.enable_verification {
                        match fusion::verify_horizontal_plan(self.window.tasks(), &segments, &plan)
                        {
                            Ok(checks) => self.stats.verification_checks += checks as u64,
                            Err(e) => {
                                let detail = format!(
                                    "horizontal launch plan violates an independence \
                                     invariant: {e}"
                                );
                                self.verify_violation("horizontal-plan", detail, &[]);
                                plan_ok = false;
                            }
                        }
                    }
                    if plan_ok {
                        let permuted = plan.apply(self.window.tasks());
                        if self.config.enable_verification {
                            match fusion::verify_reorder(self.window.tasks(), &permuted) {
                                Ok(checks) => self.stats.verification_checks += checks as u64,
                                Err(e) => {
                                    let detail = format!(
                                        "horizontal reorder does not preserve the dependence \
                                         order: {e}"
                                    );
                                    self.verify_violation("horizontal-plan", detail, &[]);
                                    plan_ok = false;
                                }
                            }
                        }
                        if plan_ok {
                            self.stats.horizontally_fused_tasks += plan.merged_tasks();
                            self.window.reorder(permuted);
                        }
                    }
                }
            }
        }

        let mut segments: VecDeque<usize> = VecDeque::new();
        let mut segments_valid = false;
        while !self.window.is_empty() {
            if !self.config.enable_task_fusion {
                let task = self.window.drain_prefix(1).pop().unwrap();
                self.launch_unfused(task);
                continue;
            }
            let window_len = self.window.len();
            // Fingerprint-first memo probe; a full canonical key is built
            // only on a miss (to insert after compilation).
            let (prefix_len, cached, memo_key) = if self.config.enable_memoization {
                match self.memo.probe(&self.window) {
                    Some(entry) => {
                        self.stats.memo_hits += 1;
                        (entry.prefix_len, Some(Arc::clone(&entry.compiled)), None)
                    }
                    None => {
                        self.stats.memo_misses += 1;
                        if !segments_valid {
                            segments = self.classify_and_segment();
                            segments_valid = true;
                        }
                        let len = segments.front().copied().unwrap_or(1);
                        (len, None, Some(CanonicalWindow::new(self.window.tasks())))
                    }
                }
            } else {
                if !segments_valid {
                    segments = self.classify_and_segment();
                    segments_valid = true;
                }
                let len = segments.front().copied().unwrap_or(1);
                (len, None, None)
            };
            let prefix_len = prefix_len.min(window_len).max(1);
            // Keep the cached segmentation aligned with the drain. A memoized
            // prefix length always equals the front segment (the memoized
            // decision is a function of the canonical window), but guard by
            // invalidating on any disagreement rather than assuming it.
            if segments_valid {
                if segments.front() == Some(&prefix_len) {
                    segments.pop_front();
                } else {
                    segments_valid = false;
                }
            }
            if prefix_len == 1 && !self.config.enable_kernel_fusion {
                // A singleton prefix with no kernel-level optimization is just
                // an unfused launch.
                let task = self.window.drain_prefix(1).pop().unwrap();
                self.launch_unfused(task);
            } else {
                self.launch_fused(prefix_len, cached, memo_key);
            }
            self.adaptive.record(window_len, prefix_len);
        }
        self.stats.windows_flushed += 1;
        self.stats.current_window_size = self.adaptive.size() as u64;
        self.sweep_dead_stores();
    }
}

/// Debug-build launch validation: checks a builder-produced launch against
/// the operation's declared [`TaskSignature`] so malformed launches fail at
/// submission — with the qualified op name in the message — rather than
/// inside the kernel pipeline.
#[cfg(debug_assertions)]
fn validate_against_signature(
    registry: &GeneratorRegistry,
    kind: TaskKind,
    args: &[StoreArg],
    scalars: &[f64],
) {
    use kernel::ArgSpec;
    let Some(sig) = registry.signature(kind) else {
        return;
    };
    let qualified = registry
        .qualified_name(kind)
        .unwrap_or_else(|| kind.to_string());
    assert_eq!(
        args.len(),
        sig.args().len(),
        "`{qualified}` expects {} store arguments, launch provides {}",
        sig.args().len(),
        args.len()
    );
    for (i, (arg, spec)) in args.iter().zip(sig.args()).enumerate() {
        let matches = match spec {
            ArgSpec::Read => arg.privilege == Privilege::Read,
            ArgSpec::Write => arg.privilege == Privilege::Write,
            ArgSpec::ReadWrite => arg.privilege == Privilege::ReadWrite,
            ArgSpec::Reduce => arg.privilege.reduces(),
        };
        assert!(
            matches,
            "argument {i} of `{qualified}`: signature declares {spec:?} but the launch \
             passes privilege {}",
            arg.privilege
        );
    }
    assert_eq!(
        scalars.len(),
        sig.num_scalars(),
        "`{qualified}` expects {} scalar parameter(s), launch provides {}",
        sig.num_scalars(),
        scalars.len()
    );
}

/// The Diffuse context: the handle applications and libraries use to create
/// stores, register generators and submit index tasks.
///
/// Cloning a `Context` is cheap (it is a shared reference to the same
/// underlying state), which lets library types such as the dense library's
/// arrays carry the context around.
#[derive(Clone, Debug)]
pub struct Context {
    inner: Rc<RefCell<ContextInner>>,
}

impl Context {
    /// Creates a context over the given configuration.
    pub fn new(config: DiffuseConfig) -> Self {
        let mut runtime_config = if config.materialize_data {
            RuntimeConfig::functional(config.machine.clone())
                .with_executor(config.executor)
                .with_backend(config.backend)
        } else {
            RuntimeConfig::simulation_only(config.machine.clone()).with_backend(config.backend)
        };
        // Fault injection and recovery are owned by the Diffuse config (so
        // `DIFFUSE_FAULTS` is read once, here) and pushed down: the runtime
        // injects device/region faults per launch, while the compile site is
        // handled in this layer's backend degradation chain.
        runtime_config.fault_plan = config.fault_plan;
        runtime_config = runtime_config.with_recovery(config.recovery);
        let inner = ContextInner {
            adaptive: AdaptiveWindow::new(
                config.initial_window_size.max(1),
                config.max_window_size.max(config.initial_window_size.max(1)),
            ),
            runtime: Runtime::new(runtime_config),
            registry: GeneratorRegistry::new(),
            window: TaskWindow::new(),
            memo: MemoCache::with_capacity_limit(config.memo_capacity.max(1)),
            backend: config.backend.backend(),
            compile_model: CompileTimeModel::default(),
            stats: ExecutionStats::default(),
            stores: HashMap::new(),
            next_store: 0,
            next_task: 0,
            lib_scratch: Vec::new(),
            req_scratch: Vec::new(),
            scalar_scratch: Vec::new(),
            len_scratch: Vec::new(),
            store_scratch: Vec::new(),
            linted_kinds: HashSet::new(),
            analysis: HashMap::default(),
            summaries: HashMap::new(),
            batch_failures: Vec::new(),
            config,
        };
        Context {
            inner: Rc::new(RefCell::new(inner)),
        }
    }

    /// Number of GPUs in the simulated machine.
    pub fn gpus(&self) -> usize {
        self.inner.borrow().runtime.gpus()
    }

    /// The configuration the context was created with.
    pub fn config(&self) -> DiffuseConfig {
        self.inner.borrow().config.clone()
    }

    /// Registers a library namespace (library developers only — see
    /// Section 6.2 and `docs/LIBRARIES.md`). Operations are then registered
    /// through the returned [`Library`], which scopes their [`TaskKind`]s to
    /// this library so independently written libraries never collide.
    pub fn register_library(&self, name: &str) -> Library {
        let id = self.inner.borrow_mut().register_library(name);
        Library {
            id,
            name: name.to_string(),
            inner: Rc::clone(&self.inner),
        }
    }

    /// Starts chained registration of a library and its operations:
    /// `ctx.library("stencil").op("star5", sig, gen).build()`.
    pub fn library(&self, name: &str) -> LibraryBuilder {
        LibraryBuilder::new(self.register_library(name))
    }

    /// Starts a typed launch of `kind`:
    /// `ctx.task(kind).read(&x, px).write(&y, py).scalar(alpha).launch()`.
    ///
    /// The builder validates the launch against the operation's declared
    /// [`TaskSignature`] at submission (see [`LaunchBuilder`]).
    pub fn task(&self, kind: TaskKind) -> LaunchBuilder {
        LaunchBuilder::new(self.clone(), kind)
    }

    /// Creates a distributed store with the given shape. The backing region is
    /// allocated lazily on first use, so stores that only ever exist as fused
    /// temporaries never allocate distributed memory.
    pub fn create_store(&self, shape: Vec<u64>, name: &str) -> StoreHandle {
        let mut inner = self.inner.borrow_mut();
        let id = StoreId(inner.next_store);
        inner.next_store += 1;
        inner.stores.insert(
            id,
            StoreMeta {
                shape: ShapeId::intern(&shape),
                name: name.to_string(),
                region: None,
                app_refs: 1,
            },
        );
        StoreHandle {
            id,
            shape,
            inner: Rc::clone(&self.inner),
        }
    }

    /// Fills a store with a constant value (flushes pending tasks first to
    /// preserve program order).
    pub fn fill(&self, store: &StoreHandle, value: f64) {
        self.flush();
        let mut inner = self.inner.borrow_mut();
        let region = inner.ensure_region(store.id);
        inner.runtime.fill(region, value).expect("fill failed");
    }

    /// Overwrites a store's contents with row-major data (host initialization,
    /// no simulated cost). Flushes pending tasks first.
    ///
    /// # Panics
    ///
    /// Panics if the data length does not match the store volume.
    pub fn write_store(&self, store: &StoreHandle, data: Vec<f64>) {
        self.flush();
        let mut inner = self.inner.borrow_mut();
        let region = inner.ensure_region(store.id);
        inner
            .runtime
            .write_region_data(region, data)
            .expect("write failed");
    }

    /// Reads back a store's contents (functional mode only). Flushes pending
    /// tasks (and any in-flight parallel launches) first.
    ///
    /// # Panics
    ///
    /// Panics if a deferred launch failed while neither fault injection nor
    /// contained verification is active: with no fault layer in play,
    /// context-generated kernels failing is a bug, not a recoverable
    /// condition. With containment active, failed cones leave their outputs
    /// untouched, surviving stores read back normally, and the per-launch
    /// records are retrievable via [`Context::take_failures`].
    pub fn read_store(&self, store: &StoreHandle) -> Option<Vec<f64>> {
        self.flush();
        let mut inner = self.inner.borrow_mut();
        let region = inner.ensure_region(store.id);
        if let Err(e) = inner.runtime.flush_launches() {
            let failures = inner.runtime.take_failures();
            inner.batch_failures.extend(failures);
            let contained =
                inner.runtime.fault_plan().is_some() || !inner.config.verify_fail_fast;
            assert!(contained, "deferred launch failed: {e}");
        }
        inner.runtime.region_data(region)
    }

    /// Reads element 0 of a store as a scalar (functional mode only).
    pub fn read_scalar(&self, store: &StoreHandle) -> Option<f64> {
        self.read_store(store).and_then(|d| d.first().copied())
    }

    /// Submits an index task built from a task kind, launch arguments and
    /// scalars. The task is buffered in the window; the window is analyzed
    /// and flushed automatically once it reaches the adaptive window size.
    ///
    /// This is the **low-level escape hatch** under the typed
    /// [`Context::task`] builder: no name defaulting and no signature
    /// validation happen here. Library and application code should use the
    /// builder; this entry point exists for harnesses that need to compare
    /// against builder-produced launches (they are bit-identical — see
    /// `crates/core/tests/launch_builder.rs`).
    pub fn submit(
        &self,
        kind: TaskKind,
        name: &str,
        args: Vec<StoreArg>,
        scalars: Vec<f64>,
    ) -> TaskId {
        let mut inner = self.inner.borrow_mut();
        let gpus = inner.runtime.gpus() as u64;
        let id = TaskId(inner.next_task);
        inner.next_task += 1;
        // Default launch domain: one point per GPU; libraries express the
        // decomposition through partitions.
        let launch_domain = Domain::linear(gpus);
        self.submit_task_locked(
            &mut inner,
            IndexTask::new(id, kind.encode(), name, launch_domain, args, scalars),
        );
        id
    }

    /// Submission endpoint of the typed [`LaunchBuilder`]: resolves the
    /// default name from the registry, validates the launch against the
    /// operation's declared signature, and buffers the task.
    ///
    /// # Panics
    ///
    /// Panics if `kind` is not registered on this context; in debug builds,
    /// also panics on any arity/role/privilege disagreement with the
    /// registered [`TaskSignature`].
    pub(crate) fn submit_built(
        &self,
        kind: TaskKind,
        name: Option<String>,
        domain: Option<Domain>,
        args: Vec<StoreArg>,
        scalars: Vec<f64>,
    ) -> TaskId {
        let mut inner = self.inner.borrow_mut();
        let name = {
            let registry = &inner.registry;
            let registered = registry.name(kind).unwrap_or_else(|| {
                panic!(
                    "task kind {kind} is not registered on this context \
                     (register it through Context::register_library)"
                )
            });
            #[cfg(debug_assertions)]
            validate_against_signature(registry, kind, &args, &scalars);
            name.unwrap_or_else(|| registered.to_string())
        };
        let launch_domain =
            domain.unwrap_or_else(|| Domain::linear(inner.runtime.gpus() as u64));
        let id = TaskId(inner.next_task);
        inner.next_task += 1;
        self.submit_task_locked(
            &mut inner,
            IndexTask::new(id, kind.encode(), name, launch_domain, args, scalars),
        );
        id
    }

    fn submit_task_locked(&self, inner: &mut ContextInner, mut task: IndexTask) {
        // Stamp every argument with its store's interned shape: from here on
        // the analyses (fingerprinting, canonicalization, temporary
        // elimination) read shapes straight off the arguments.
        for arg in &mut task.args {
            let meta = inner
                .stores
                .get(&arg.store)
                .unwrap_or_else(|| panic!("submit references unknown store {}", arg.store));
            arg.shape = meta.shape;
        }
        // Privilege tightening (after shape stamping — the analysis key and
        // the generator both need concrete shapes, and after the debug-only
        // declared-signature validation in `submit`, which checks what the
        // caller passed, not what the analyzer narrowed it to).
        if inner.config.analyze == AnalyzeMode::Inferred {
            inner.tighten_task(&mut task);
        }
        inner.stats.tasks_submitted += 1;
        let lib = (task.kind >> 16) as usize;
        if let Some(ls) = inner.stats.per_library.get_mut(lib) {
            ls.tasks_submitted += 1;
        }
        inner.window.push(task);
        if inner.window.len() >= inner.adaptive.size() {
            inner.process_window();
        }
    }

    /// Explains the currently buffered (unflushed) task window: the fusible
    /// segmentation plus, per split boundary, the violated constraint, the
    /// dependence classification ([`fusion::DepClass`]) and a suggestion
    /// that would admit fusion. Purely observational — the window is neither
    /// flushed nor reordered. See `docs/ANALYZE.md` and `examples/explain.rs`.
    pub fn explain(&self) -> fusion::WindowReport {
        self.inner.borrow_mut().explain_window()
    }

    /// Flushes the task window: analyzes and launches every buffered task
    /// (the `flush_window` operation of Figure 6).
    pub fn flush(&self) {
        let mut inner = self.inner.borrow_mut();
        if !inner.window.is_empty() {
            inner.process_window();
        }
    }

    /// Execution statistics accumulated so far, including the per-library
    /// attribution ([`ExecutionStats::per_library`]) and the fault/recovery
    /// counters (the runtime's device/region fault attribution merged with
    /// this layer's compile-degradation accounting).
    pub fn stats(&self) -> ExecutionStats {
        let inner = self.inner.borrow();
        let mut stats = inner.stats.clone();
        stats.current_window_size = inner.adaptive.size() as u64;
        stats.memo_evictions = inner.memo.evictions();
        let fs = inner.runtime.fault_stats();
        stats.faults_injected += fs.faults_injected;
        stats.retries += fs.retries;
        stats.degraded_launches += fs.degraded_launches;
        stats.abandoned_launches += fs.abandoned_launches;
        stats.recovery_sim_time += fs.recovery_sim_time;
        stats
    }

    /// Drains the per-launch failure records accumulated by fault injection
    /// and contained verification errors: each record names the launch and
    /// carries the structured [`RuntimeError`] that felled it (the cone
    /// downstream of a failure appears as `RuntimeError::Poisoned` entries).
    /// Pending work is flushed first so in-flight failures are visible.
    /// Empty unless a fault plan is active or `verify_fail_fast` is off —
    /// recovery repairs faults without abandoning launches, so under the
    /// default policy this stays empty even with injection on.
    pub fn take_failures(&self) -> Vec<LaunchFailure> {
        self.flush();
        let mut inner = self.inner.borrow_mut();
        if let Err(e) = inner.runtime.flush_launches() {
            // The record set below carries strictly more detail than the
            // first-error summary.
            let _ = e;
        }
        let mut out = std::mem::take(&mut inner.batch_failures);
        out.extend(inner.runtime.take_failures());
        out
    }

    /// The runtime's execution profile.
    pub fn profile(&self) -> Profile {
        *self.inner.borrow().runtime.profile()
    }

    /// Simulated seconds elapsed on the machine.
    pub fn elapsed(&self) -> f64 {
        self.inner.borrow().runtime.elapsed()
    }

    /// Resets the simulated clock and runtime profile, e.g. after warmup
    /// iterations. Diffuse's own statistics (compile time, fusion counts) are
    /// preserved.
    pub fn reset_timing(&self) {
        self.flush();
        self.inner.borrow_mut().runtime.reset_timing();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ir::Privilege;
    use kernel::LoopBuilder;
    use machine::MachineConfig;

    /// Registers an elementwise binary-add generator and returns its kind.
    fn register_add(ctx: &Context) -> TaskKind {
        let lib = ctx.register_library("adds");
        lib.register(
            "add",
            TaskSignature::new().read().read().write(),
            |_args| {
                let mut m = KernelModule::new(3);
                m.set_role(BufferId(2), BufferRole::Output);
                let mut b = LoopBuilder::new("add", BufferId(2));
                let (x, y) = (b.load(BufferId(0)), b.load(BufferId(1)));
                let s = b.add(x, y);
                b.store(BufferId(2), s);
                m.push_loop(b.finish());
                m
            },
        )
    }

    fn register_scale(ctx: &Context) -> TaskKind {
        let lib = ctx.register_library("scales");
        lib.register(
            "scale",
            TaskSignature::new().read().write().scalars(1),
            |_args| {
                let mut m = KernelModule::new(2);
                m.set_role(BufferId(1), BufferRole::Output);
                let mut b = LoopBuilder::new("scale", BufferId(1));
                let x = b.load(BufferId(0));
                let s = b.param(0);
                let v = b.mul(x, s);
                b.store(BufferId(1), v);
                m.push_loop(b.finish());
                m
            },
        )
    }

    fn ctx_with_gpus(gpus: usize) -> Context {
        Context::new(DiffuseConfig::fused(MachineConfig::with_gpus(gpus)))
    }

    fn block(n: u64, gpus: u64) -> Partition {
        Partition::block(vec![n.div_ceil(gpus)])
    }

    #[test]
    fn fused_chain_executes_correctly_and_launches_once() {
        let ctx = ctx_with_gpus(4);
        let add = register_add(&ctx);
        let n = 64u64;
        let p = block(n, 4);
        let a = ctx.create_store(vec![n], "a");
        let b = ctx.create_store(vec![n], "b");
        let c = ctx.create_store(vec![n], "c");
        let d = ctx.create_store(vec![n], "d");
        ctx.fill(&a, 1.0);
        ctx.fill(&b, 2.0);
        let ew = |x: &StoreHandle, y: &StoreHandle, o: &StoreHandle| {
            vec![
                StoreArg::new(x.id(), p.clone(), Privilege::Read),
                StoreArg::new(y.id(), p.clone(), Privilege::Read),
                StoreArg::new(o.id(), p.clone(), Privilege::Write),
            ]
        };
        ctx.submit(add, "add", ew(&a, &b, &c), vec![]);
        ctx.submit(add, "add", ew(&c, &a, &d), vec![]);
        ctx.flush();
        assert_eq!(ctx.read_store(&d).unwrap(), vec![4.0; 64]);
        let stats = ctx.stats();
        assert_eq!(stats.tasks_submitted, 2);
        assert_eq!(stats.tasks_launched, 1);
        assert_eq!(stats.fused_tasks, 1);
    }

    #[test]
    fn unfused_config_launches_every_task() {
        let ctx = Context::new(DiffuseConfig::unfused(MachineConfig::with_gpus(4)));
        let add = register_add(&ctx);
        let n = 64u64;
        let p = block(n, 4);
        let a = ctx.create_store(vec![n], "a");
        let b = ctx.create_store(vec![n], "b");
        let c = ctx.create_store(vec![n], "c");
        let d = ctx.create_store(vec![n], "d");
        ctx.fill(&a, 1.0);
        ctx.fill(&b, 2.0);
        let ew = |x: &StoreHandle, y: &StoreHandle, o: &StoreHandle| {
            vec![
                StoreArg::new(x.id(), p.clone(), Privilege::Read),
                StoreArg::new(y.id(), p.clone(), Privilege::Read),
                StoreArg::new(o.id(), p.clone(), Privilege::Write),
            ]
        };
        ctx.submit(add, "add", ew(&a, &b, &c), vec![]);
        ctx.submit(add, "add", ew(&c, &a, &d), vec![]);
        ctx.flush();
        assert_eq!(ctx.read_store(&d).unwrap(), vec![4.0; 64]);
        let stats = ctx.stats();
        assert_eq!(stats.tasks_launched, 2);
        assert_eq!(stats.fused_tasks, 0);
        assert_eq!(stats.compile_time, 0.0);
    }

    #[test]
    fn fused_and_unfused_agree_numerically() {
        let run = |config: DiffuseConfig| {
            let ctx = Context::new(config);
            let add = register_add(&ctx);
            let scale = register_scale(&ctx);
            let n = 32u64;
            let p = block(n, 4);
            let a = ctx.create_store(vec![n], "a");
            let b = ctx.create_store(vec![n], "b");
            let out = ctx.create_store(vec![n], "out");
            ctx.write_store(&a, (0..n).map(|i| i as f64).collect());
            ctx.fill(&b, 3.0);
            // t = a + b; out = 0.5 * t, with t dropped (temporary).
            let t = ctx.create_store(vec![n], "t");
            ctx.submit(
                add,
                "add",
                vec![
                    StoreArg::new(a.id(), p.clone(), Privilege::Read),
                    StoreArg::new(b.id(), p.clone(), Privilege::Read),
                    StoreArg::new(t.id(), p.clone(), Privilege::Write),
                ],
                vec![],
            );
            ctx.submit(
                scale,
                "scale",
                vec![
                    StoreArg::new(t.id(), p.clone(), Privilege::Read),
                    StoreArg::new(out.id(), p.clone(), Privilege::Write),
                ],
                vec![0.5],
            );
            drop(t);
            ctx.flush();
            ctx.read_store(&out).unwrap()
        };
        let fused = run(DiffuseConfig::fused(MachineConfig::with_gpus(4)));
        let unfused = run(DiffuseConfig::unfused(MachineConfig::with_gpus(4)));
        assert_eq!(fused, unfused);
        assert_eq!(fused[2], (2.0 + 3.0) * 0.5);
    }

    #[test]
    fn temporary_store_avoids_distributed_allocation() {
        let ctx = ctx_with_gpus(4);
        let add = register_add(&ctx);
        let n = 64u64;
        let p = block(n, 4);
        let a = ctx.create_store(vec![n], "a");
        let b = ctx.create_store(vec![n], "b");
        let out = ctx.create_store(vec![n], "out");
        ctx.fill(&a, 1.0);
        ctx.fill(&b, 2.0);
        let t = ctx.create_store(vec![n], "t");
        let ew = |x: ir::StoreId, y: ir::StoreId, o: ir::StoreId| {
            vec![
                StoreArg::new(x, p.clone(), Privilege::Read),
                StoreArg::new(y, p.clone(), Privilege::Read),
                StoreArg::new(o, p.clone(), Privilege::Write),
            ]
        };
        ctx.submit(add, "add", ew(a.id(), b.id(), t.id()), vec![]);
        ctx.submit(add, "add", ew(t.id(), b.id(), out.id()), vec![]);
        drop(t);
        ctx.flush();
        assert_eq!(ctx.read_store(&out).unwrap(), vec![5.0; 64]);
        let stats = ctx.stats();
        assert_eq!(stats.temporaries_eliminated, 1);
        assert_eq!(stats.distributed_allocations_avoided, 1);
    }

    #[test]
    fn memoization_reuses_compiled_kernels_on_isomorphic_windows() {
        let ctx = ctx_with_gpus(4);
        let add = register_add(&ctx);
        let n = 64u64;
        let p = block(n, 4);
        let a = ctx.create_store(vec![n], "a");
        let b = ctx.create_store(vec![n], "b");
        ctx.fill(&a, 1.0);
        ctx.fill(&b, 2.0);
        let ew = |x: ir::StoreId, y: ir::StoreId, o: ir::StoreId| {
            vec![
                StoreArg::new(x, p.clone(), Privilege::Read),
                StoreArg::new(y, p.clone(), Privilege::Read),
                StoreArg::new(o, p.clone(), Privilege::Write),
            ]
        };
        // Two iterations of the same two-task pattern over fresh temporaries.
        for _ in 0..2 {
            let t = ctx.create_store(vec![n], "t");
            let u = ctx.create_store(vec![n], "u");
            ctx.submit(add, "add", ew(a.id(), b.id(), t.id()), vec![]);
            ctx.submit(add, "add", ew(t.id(), b.id(), u.id()), vec![]);
            drop(t);
            drop(u);
            ctx.flush();
        }
        let stats = ctx.stats();
        assert_eq!(stats.compilations, 1, "second window reuses the compiled kernel");
        assert!(stats.memo_hits >= 1);
        assert!(stats.compile_time > 0.0);
    }

    #[test]
    fn fusion_reduces_simulated_time() {
        let run = |config: DiffuseConfig| {
            let ctx = Context::new(config.simulation_only());
            let add = register_add(&ctx);
            let n = 1u64 << 22;
            let p = block(n, 8);
            let a = ctx.create_store(vec![n], "a");
            let b = ctx.create_store(vec![n], "b");
            ctx.fill(&a, 1.0);
            ctx.fill(&b, 2.0);
            ctx.reset_timing();
            let ew = |x: ir::StoreId, y: ir::StoreId, o: ir::StoreId| {
                vec![
                    StoreArg::new(x, p.clone(), Privilege::Read),
                    StoreArg::new(y, p.clone(), Privilege::Read),
                    StoreArg::new(o, p.clone(), Privilege::Write),
                ]
            };
            for _ in 0..5 {
                let t1 = ctx.create_store(vec![n], "t1");
                let t2 = ctx.create_store(vec![n], "t2");
                let t3 = ctx.create_store(vec![n], "t3");
                ctx.submit(add, "add", ew(a.id(), b.id(), t1.id()), vec![]);
                ctx.submit(add, "add", ew(t1.id(), b.id(), t2.id()), vec![]);
                ctx.submit(add, "add", ew(t2.id(), b.id(), t3.id()), vec![]);
                drop(t1);
                drop(t2);
                drop(t3);
                ctx.flush();
            }
            ctx.elapsed()
        };
        let fused = run(DiffuseConfig::fused(MachineConfig::with_gpus(8)));
        let unfused = run(DiffuseConfig::unfused(MachineConfig::with_gpus(8)));
        assert!(
            fused < unfused,
            "fused {fused} should be faster than unfused {unfused}"
        );
    }

    #[test]
    fn layout_drift_rememoizes_instead_of_recompiling_forever() {
        // Three isomorphic windows; between the first and the rest, the
        // output store's liveness changes (held handle vs dropped temp), so
        // the cached buffer layout drifts. The drift recompiles once and
        // must *replace* the memo entry, so the third window hits and skips
        // compilation again.
        let ctx = ctx_with_gpus(2);
        let add = register_add(&ctx);
        let n = 16u64;
        let p = block(n, 2);
        let a = ctx.create_store(vec![n], "a");
        ctx.fill(&a, 1.0);
        let submit_pair = |t: &StoreHandle, u: &StoreHandle| {
            let ew = |x: ir::StoreId, y: ir::StoreId, o: ir::StoreId| {
                vec![
                    StoreArg::new(x, p.clone(), Privilege::Read),
                    StoreArg::new(y, p.clone(), Privilege::Read),
                    StoreArg::new(o, p.clone(), Privilege::Write),
                ]
            };
            ctx.submit(add, "add", ew(a.id(), a.id(), t.id()), vec![]);
            ctx.submit(add, "add", ew(t.id(), a.id(), u.id()), vec![]);
        };
        // Window 1: intermediate store kept live across the flush -> not a
        // temporary -> it becomes a region requirement in the layout.
        let t1 = ctx.create_store(vec![n], "t");
        let u1 = ctx.create_store(vec![n], "u");
        submit_pair(&t1, &u1);
        ctx.flush();
        assert_eq!(ctx.stats().compilations, 1);
        // Windows 2 and 3: the intermediate is dropped before the flush ->
        // demoted to a task-local -> different layout than the cached one.
        for expected_compilations in [2, 2] {
            let t = ctx.create_store(vec![n], "t");
            let u = ctx.create_store(vec![n], "u");
            submit_pair(&t, &u);
            drop(t);
            drop(u);
            ctx.flush();
            assert_eq!(
                ctx.stats().compilations, expected_compilations,
                "drift must recompile exactly once, then hit again"
            );
        }
        assert!(ctx.stats().memo_hits >= 2);
        drop((t1, u1));
    }

    #[test]
    fn backends_agree_numerically_and_memoize_separately() {
        use kernel::BackendKind;
        let run = |backend: BackendKind| {
            let ctx = Context::new(
                DiffuseConfig::fused(MachineConfig::with_gpus(4)).with_backend(backend),
            );
            let add = register_add(&ctx);
            let scale = register_scale(&ctx);
            let n = 48u64;
            let p = block(n, 4);
            let a = ctx.create_store(vec![n], "a");
            let out = ctx.create_store(vec![n], "out");
            ctx.write_store(&a, (0..n).map(|i| i as f64 * 0.25).collect());
            for _ in 0..2 {
                let t = ctx.create_store(vec![n], "t");
                ctx.submit(
                    add,
                    "add",
                    vec![
                        StoreArg::new(a.id(), p.clone(), Privilege::Read),
                        StoreArg::new(a.id(), p.clone(), Privilege::Read),
                        StoreArg::new(t.id(), p.clone(), Privilege::Write),
                    ],
                    vec![],
                );
                ctx.submit(
                    scale,
                    "scale",
                    vec![
                        StoreArg::new(t.id(), p.clone(), Privilege::Read),
                        StoreArg::new(out.id(), p.clone(), Privilege::Write),
                    ],
                    vec![1.5],
                );
                drop(t);
                ctx.flush();
            }
            (ctx.read_store(&out).unwrap(), ctx.elapsed(), ctx.stats())
        };
        let (interp_data, interp_time, interp_stats) = run(BackendKind::Interp);
        for jit in [BackendKind::Closure, BackendKind::Simd] {
            let (data, time, stats) = run(jit);
            assert_eq!(interp_data, data, "{jit:?} must agree with interp bitwise");
            assert_eq!(
                interp_time, time,
                "simulated time is backend-invariant (compile time is accounted \
                 in stats, not on the clock)"
            );
            // Every backend compiles once and hits the memo on the second window.
            assert_eq!(stats.compilations, 1, "memo hit must skip {jit:?} compilation");
            assert!(stats.memo_hits >= 1);
            // A JIT backend's one-time cost is priced above the interpreter
            // calibration through the compile_cost hook.
            assert!(stats.compile_time > interp_stats.compile_time);
        }
        assert_eq!(interp_stats.compilations, 1);
        assert!(interp_stats.memo_hits >= 1);
    }

    #[test]
    fn per_library_stats_attribute_cross_library_fusion() {
        // `register_add` and `register_scale` register two distinct
        // libraries, so an add→scale chain that fuses is a cross-library
        // fused task and must be attributed to both namespaces.
        let ctx = ctx_with_gpus(4);
        let add = register_add(&ctx);
        let scale = register_scale(&ctx);
        let n = 32u64;
        let p = block(n, 4);
        let a = ctx.create_store(vec![n], "a");
        let out = ctx.create_store(vec![n], "out");
        ctx.fill(&a, 2.0);
        let t = ctx.create_store(vec![n], "t");
        ctx.task(add)
            .read(&a, p.clone())
            .read(&a, p.clone())
            .write(&t, p.clone())
            .launch();
        ctx.task(scale)
            .read(&t, p.clone())
            .write(&out, p)
            .scalar(0.5)
            .launch();
        drop(t);
        ctx.flush();
        assert_eq!(ctx.read_store(&out).unwrap(), vec![2.0; 32]);
        let stats = ctx.stats();
        assert_eq!(stats.fused_tasks, 1);
        assert_eq!(stats.cross_library_fused_tasks, 1);
        let adds = stats.library("adds").unwrap();
        let scales = stats.library("scales").unwrap();
        assert_eq!(adds.tasks_submitted, 1);
        assert_eq!(scales.tasks_submitted, 1);
        // The fill launch belongs to no library; the fused launch counts once
        // for each participant.
        assert_eq!(adds.launches, 1);
        assert_eq!(scales.launches, 1);
        assert_eq!(adds.cross_library_launches, 1);
        assert_eq!(scales.cross_library_launches, 1);
        assert!(adds.simulated_time > 0.0 && scales.simulated_time > 0.0);
    }

    /// A batched stream: per batch, one elementwise add (launch domain =
    /// GPUs) followed by a domain-1 "finalize" scale — the domain change
    /// breaks vertical fusion after every batch, which is exactly the shape
    /// horizontal fusion exists for.
    fn run_batched(horizontal: bool, batches: usize) -> (Vec<Vec<f64>>, ExecutionStats) {
        let ctx = Context::new(
            DiffuseConfig::fused(MachineConfig::with_gpus(4))
                .with_window(64, 64)
                .with_horizontal_fusion(horizontal),
        );
        let add = register_add(&ctx);
        let scale = register_scale(&ctx);
        let n = 16u64;
        let p = block(n, 4);
        let mut stores = Vec::new();
        for k in 0..batches {
            let a = ctx.create_store(vec![n], "a");
            let b = ctx.create_store(vec![n], "b");
            let out = ctx.create_store(vec![n], "out");
            let resp = ctx.create_store(vec![n], "resp");
            ctx.fill(&a, 1.0 + k as f64);
            ctx.fill(&b, 2.0);
            stores.push((a, b, out, resp));
        }
        let stats0 = ctx.stats();
        for (a, b, out, resp) in &stores {
            ctx.task(add)
                .read(a, p.clone())
                .read(b, p.clone())
                .write(out, p.clone())
                .launch();
            ctx.task(scale)
                .domain(Domain::linear(1))
                .read(out, Partition::Replicate)
                .write(resp, Partition::Replicate)
                .scalar(0.5)
                .launch();
        }
        ctx.flush();
        let results = stores
            .iter()
            .map(|(_, _, _, resp)| ctx.read_store(resp).unwrap())
            .collect();
        (results, ctx.stats().since(&stats0))
    }

    #[test]
    fn horizontal_fusion_packs_independent_batches_bit_identically() {
        let (plain, plain_stats) = run_batched(false, 4);
        let (packed, packed_stats) = run_batched(true, 4);
        assert_eq!(packed, plain, "horizontal fusion must not change results");
        assert_eq!(packed[2][0], (1.0 + 2.0 + 2.0) * 0.5);
        // Vertically, every batch is two launches (the domain change breaks
        // fusion between batches); horizontally, all adds share one launch
        // and all finalizes share another.
        assert_eq!(plain_stats.tasks_launched, 8);
        assert_eq!(packed_stats.tasks_launched, 2);
        assert_eq!(packed_stats.fused_tasks, 2);
        assert_eq!(packed_stats.horizontally_fused_tasks, 8);
        assert_eq!(plain_stats.horizontally_fused_tasks, 0);
    }

    #[test]
    fn horizontal_fusion_memoizes_packed_windows() {
        // Two isomorphic batched rounds over fresh stores: the second round's
        // permuted window must hit the memo entry of the first.
        let ctx = Context::new(
            DiffuseConfig::fused(MachineConfig::with_gpus(2))
                .with_window(32, 32)
                .with_horizontal_fusion(true),
        );
        let add = register_add(&ctx);
        let scale = register_scale(&ctx);
        let n = 8u64;
        let p = block(n, 2);
        for round in 0..2 {
            let mut keep = Vec::new();
            for k in 0..3 {
                let a = ctx.create_store(vec![n], "a");
                let out = ctx.create_store(vec![n], "out");
                let resp = ctx.create_store(vec![n], "resp");
                ctx.fill(&a, (round * 3 + k) as f64);
                keep.push((a, out, resp));
            }
            for (a, out, resp) in &keep {
                ctx.task(add)
                    .read(a, p.clone())
                    .read(a, p.clone())
                    .write(out, p.clone())
                    .launch();
                ctx.task(scale)
                    .domain(Domain::linear(1))
                    .read(out, Partition::Replicate)
                    .write(resp, Partition::Replicate)
                    .scalar(2.0)
                    .launch();
            }
            ctx.flush();
            assert_eq!(ctx.read_store(&keep[2].2).unwrap(), vec![(round * 3 + 2) as f64 * 4.0; 8]);
        }
        let stats = ctx.stats();
        // One compilation per launch group (adds, finalizes); round two
        // replays both skeletons.
        assert_eq!(stats.compilations, 2, "packed windows memoize");
        assert!(stats.memo_hits >= 2);
        assert_eq!(stats.horizontally_fused_tasks, 12);
    }

    #[test]
    fn compile_faults_degrade_down_the_backend_chain() {
        use kernel::BackendKind;
        use runtime::FaultPlan;
        // At rate 1.0 every fault site fires. The runtime-site schedule
        // (device + region-read) is identical across backends — launch
        // fingerprints deliberately exclude the kernel — so the per-backend
        // difference isolates the compile site: simd falls two tiers to the
        // interpreter, closure one, and the interpreter cannot fail.
        let run = |backend: BackendKind| {
            let ctx = Context::new(
                DiffuseConfig::fused(MachineConfig::with_gpus(4))
                    .with_backend(backend)
                    .with_fault_plan(FaultPlan::new(5, 1.0)),
            );
            let add = register_add(&ctx);
            let n = 32u64;
            let p = block(n, 4);
            let a = ctx.create_store(vec![n], "a");
            let out = ctx.create_store(vec![n], "out");
            ctx.fill(&a, 2.0);
            let t = ctx.create_store(vec![n], "t");
            let ew = |x: ir::StoreId, y: ir::StoreId, o: ir::StoreId| {
                vec![
                    StoreArg::new(x, p.clone(), Privilege::Read),
                    StoreArg::new(y, p.clone(), Privilege::Read),
                    StoreArg::new(o, p.clone(), Privilege::Write),
                ]
            };
            ctx.submit(add, "add", ew(a.id(), a.id(), t.id()), vec![]);
            ctx.submit(add, "add", ew(t.id(), a.id(), out.id()), vec![]);
            drop(t);
            ctx.flush();
            let data = ctx.read_store(&out).unwrap();
            (data, ctx.stats())
        };
        let (interp_data, interp_stats) = run(BackendKind::Interp);
        let (closure_data, closure_stats) = run(BackendKind::Closure);
        let (simd_data, simd_stats) = run(BackendKind::Simd);
        // Recovery repairs every injected fault: results are fault-free.
        assert_eq!(interp_data, vec![6.0; 32]);
        assert_eq!(closure_data, interp_data);
        assert_eq!(simd_data, interp_data);
        assert!(interp_stats.faults_injected > 0, "runtime sites fired");
        // One fused window = one compilation; the compile-site delta on top
        // of the shared runtime-site schedule pins the degradation order.
        assert_eq!(closure_stats.faults_injected - interp_stats.faults_injected, 1);
        assert_eq!(simd_stats.faults_injected - interp_stats.faults_injected, 2);
        assert_eq!(
            closure_stats.degraded_launches - interp_stats.degraded_launches,
            1
        );
        assert_eq!(simd_stats.degraded_launches - interp_stats.degraded_launches, 1);
        // Compile faults never retry on the simulated clock (the fallback
        // tier compiles instead); retries are the runtime sites' alone.
        assert_eq!(simd_stats.retries, interp_stats.retries);
        // The thrown-away tiers' JIT work is still paid for.
        assert!(simd_stats.compile_time > interp_stats.compile_time);
        // Recovery left nothing abandoned.
        assert_eq!(simd_stats.abandoned_launches, 0);
        assert!(ctx_with_gpus(1).take_failures().is_empty());
    }

    #[test]
    fn contained_verify_errors_fail_only_the_cone() {
        use runtime::RuntimeError;
        // A generator whose kernel is inconsistent with its declared
        // signature: `bad` declares read + write but its module writes the
        // *input* buffer and never touches the output. Pinned to declared
        // privileges: under AnalyzeMode::Inferred the analyzer would tighten
        // the never-exercised write of `t` to a read, the downstream task
        // would genuinely no longer depend on the violating launch, and the
        // poison cone this test pins would (correctly) shrink to just `bad`.
        let ctx = Context::new(
            DiffuseConfig::unfused(MachineConfig::with_gpus(2))
                .with_verification(true)
                .with_verify_fail_fast(false)
                .with_analyze(AnalyzeMode::Declared),
        );
        let lib = ctx.register_library("chaoslib");
        let bad = lib.register("bad", TaskSignature::new().read().write(), |_args| {
            let mut m = KernelModule::new(2);
            m.set_role(BufferId(0), BufferRole::Output);
            let mut b = LoopBuilder::new("bad", BufferId(0));
            let c = b.constant(1.0);
            b.store(BufferId(0), c);
            m.push_loop(b.finish());
            m
        });
        let add = register_add(&ctx);
        let n = 16u64;
        let p = block(n, 2);
        let a = ctx.create_store(vec![n], "a");
        let t = ctx.create_store(vec![n], "t");
        let cone = ctx.create_store(vec![n], "cone");
        let indep = ctx.create_store(vec![n], "indep");
        ctx.fill(&a, 3.0);
        ctx.submit(
            bad,
            "bad",
            vec![
                StoreArg::new(a.id(), p.clone(), Privilege::Read),
                StoreArg::new(t.id(), p.clone(), Privilege::Write),
            ],
            vec![],
        );
        // Downstream of the violation: must be skipped (poisoned).
        ctx.submit(
            add,
            "add",
            vec![
                StoreArg::new(t.id(), p.clone(), Privilege::Read),
                StoreArg::new(a.id(), p.clone(), Privilege::Read),
                StoreArg::new(cone.id(), p.clone(), Privilege::Write),
            ],
            vec![],
        );
        // Independent of the violation: must complete.
        ctx.submit(
            add,
            "add",
            vec![
                StoreArg::new(a.id(), p.clone(), Privilege::Read),
                StoreArg::new(a.id(), p.clone(), Privilege::Read),
                StoreArg::new(indep.id(), p, Privilege::Write),
            ],
            vec![],
        );
        ctx.flush();
        assert_eq!(ctx.read_store(&indep).unwrap(), vec![6.0; 16]);
        let failures = ctx.take_failures();
        assert_eq!(failures.len(), 2, "the violation and its cone: {failures:?}");
        assert_eq!(failures[0].launch, "bad");
        match &failures[0].error {
            RuntimeError::Verify { launch, detail } => {
                assert_eq!(launch, "bad");
                assert!(detail.contains("signature"), "unexpected detail: {detail}");
            }
            other => panic!("expected a Verify error, got {other}"),
        }
        match &failures[1].error {
            RuntimeError::Poisoned { upstream, .. } => assert_eq!(upstream, "bad"),
            other => panic!("expected a Poisoned error, got {other}"),
        }
        // Drained once; a second take is empty.
        assert!(ctx.take_failures().is_empty());
    }

    #[test]
    fn window_grows_when_everything_fuses() {
        let ctx = Context::new(
            DiffuseConfig::fused(MachineConfig::with_gpus(2)).with_window(2, 16),
        );
        let add = register_add(&ctx);
        let n = 16u64;
        let p = block(n, 2);
        let a = ctx.create_store(vec![n], "a");
        let b = ctx.create_store(vec![n], "b");
        ctx.fill(&a, 1.0);
        ctx.fill(&b, 1.0);
        for _ in 0..8 {
            let t = ctx.create_store(vec![n], "t");
            ctx.submit(
                add,
                "add",
                vec![
                    StoreArg::new(a.id(), p.clone(), Privilege::Read),
                    StoreArg::new(b.id(), p.clone(), Privilege::Read),
                    StoreArg::new(t.id(), p.clone(), Privilege::Write),
                ],
                vec![],
            );
            drop(t);
        }
        ctx.flush();
        assert!(ctx.stats().current_window_size > 2);
    }
}
