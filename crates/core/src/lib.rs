//! Diffuse: the middle layer between task-based libraries and the runtime.
//!
//! This crate ties the pieces of the reproduction together into the system the
//! paper describes. Libraries (the `dense` and `sparse` crates) create
//! [`StoreHandle`]s and submit [`ir::IndexTask`]s through a [`Context`];
//! Diffuse buffers the tasks into a window, finds fusible prefixes with the
//! analysis in the `fusion` crate, demotes temporary stores, JIT-compiles the
//! fused kernel bodies with the `kernel` crate's pipeline, memoizes both the
//! analysis and the compiled kernels over isomorphic windows, and finally
//! lowers everything to index-task launches on the Legion-style `runtime`.
//!
//! Every optimization can be switched off through [`DiffuseConfig`], which is
//! how the benchmark harness produces the paper's unfused baselines and the
//! ablations.
//!
//! # Example: the Figure 8 computation
//!
//! ```
//! use diffuse::{Context, DiffuseConfig};
//! use machine::MachineConfig;
//! use ir::{Partition, Privilege, StoreArg};
//! use kernel::{BufferId, BufferRole, KernelModule, LoopBuilder};
//!
//! let ctx = Context::new(DiffuseConfig::fused(MachineConfig::single_node(4)));
//! // Register an elementwise-add generator (library developer's job).
//! let add = ctx.register_generator("add", |args| {
//!     let mut m = KernelModule::new(3);
//!     m.set_role(BufferId(2), BufferRole::Output);
//!     let mut b = LoopBuilder::new("add", BufferId(2));
//!     let (x, y) = (b.load(BufferId(0)), b.load(BufferId(1)));
//!     let s = b.add(x, y);
//!     b.store(BufferId(2), s);
//!     m.push_loop(b.finish());
//!     assert_eq!(args.buffer_lens.len(), 3);
//!     m
//! });
//!
//! let n = 64u64;
//! let a = ctx.create_store(vec![n], "a");
//! let b = ctx.create_store(vec![n], "b");
//! let c = ctx.create_store(vec![n], "c");
//! let d = ctx.create_store(vec![n], "d");
//! let e = ctx.create_store(vec![n], "e");
//! ctx.fill(&a, 1.0); ctx.fill(&b, 2.0); ctx.fill(&d, 3.0);
//!
//! let block = Partition::block(vec![n / 4]);
//! let ew = |x: &diffuse::StoreHandle, y: &diffuse::StoreHandle, out: &diffuse::StoreHandle| vec![
//!     StoreArg::new(x.id(), block.clone(), Privilege::Read),
//!     StoreArg::new(y.id(), block.clone(), Privilege::Read),
//!     StoreArg::new(out.id(), block.clone(), Privilege::Write),
//! ];
//! ctx.submit(add, "add", ew(&a, &b, &c), vec![]);
//! ctx.submit(add, "add", ew(&c, &d, &e), vec![]);
//! drop(c); // c becomes a temporary
//! ctx.flush();
//!
//! assert_eq!(ctx.read_store(&e).unwrap(), vec![6.0; 64]);
//! let stats = ctx.stats();
//! assert_eq!(stats.tasks_submitted, 2);
//! assert_eq!(stats.tasks_launched, 1, "both adds fused into one launch");
//! ```

pub mod config;
pub mod context;
pub mod handle;
pub mod stats;

pub use config::DiffuseConfig;
pub use context::Context;
pub use handle::StoreHandle;
pub use stats::ExecutionStats;
// Re-exported so applications can pick a runtime executor or kernel backend
// without depending on the `runtime`/`kernel` crates directly.
pub use kernel::BackendKind;
pub use runtime::ExecutorKind;
