//! Diffuse: the middle layer between task-based libraries and the runtime.
//!
//! This crate ties the pieces of the reproduction together into the system the
//! paper describes. Libraries (the `dense`, `sparse` and `stencil` crates)
//! register a [`Library`] namespace of kernel generators on a [`Context`],
//! create [`StoreHandle`]s and submit typed launches through the
//! [`LaunchBuilder`]; Diffuse buffers the tasks into a window, finds fusible
//! prefixes with the analysis in the `fusion` crate, demotes temporary
//! stores, JIT-compiles the fused kernel bodies with the `kernel` crate's
//! pipeline, memoizes both the analysis and the compiled kernels over
//! isomorphic windows, and finally lowers everything to index-task launches
//! on the Legion-style `runtime`. Because independently registered libraries
//! share one task window, their streams fuse across library boundaries
//! (Section 2); execution statistics are attributed per library
//! ([`ExecutionStats::per_library`]).
//!
//! Every optimization can be switched off through [`DiffuseConfig`], which is
//! how the benchmark harness produces the paper's unfused baselines and the
//! ablations. See `docs/LIBRARIES.md` for the library developer's guide.
//!
//! # Example: the Figure 8 computation
//!
//! ```
//! use diffuse::{Context, DiffuseConfig};
//! use machine::MachineConfig;
//! use ir::Partition;
//! use kernel::{BufferId, BufferRole, KernelModule, LoopBuilder, TaskSignature};
//!
//! let ctx = Context::new(DiffuseConfig::fused(MachineConfig::single_node(4)));
//! // Register a library with an elementwise-add generator (the library
//! // developer's job): the signature declares two reads, one write.
//! let lib = ctx
//!     .library("mylib")
//!     .op("add", TaskSignature::new().read().read().write(), |args| {
//!         let mut m = KernelModule::new(3);
//!         m.set_role(BufferId(2), BufferRole::Output);
//!         let mut b = LoopBuilder::new("add", BufferId(2));
//!         let (x, y) = (b.load(BufferId(0)), b.load(BufferId(1)));
//!         let s = b.add(x, y);
//!         b.store(BufferId(2), s);
//!         m.push_loop(b.finish());
//!         assert_eq!(args.buffer_lens.len(), 3);
//!         m
//!     })
//!     .build();
//! let add = lib.kind("add").unwrap();
//!
//! let n = 64u64;
//! let a = ctx.create_store(vec![n], "a");
//! let b = ctx.create_store(vec![n], "b");
//! let c = ctx.create_store(vec![n], "c");
//! let d = ctx.create_store(vec![n], "d");
//! let e = ctx.create_store(vec![n], "e");
//! ctx.fill(&a, 1.0); ctx.fill(&b, 2.0); ctx.fill(&d, 3.0);
//!
//! // Typed launches: roles are checked against the signature at submission.
//! let block = Partition::block(vec![n / 4]);
//! ctx.task(add)
//!     .read(&a, block.clone())
//!     .read(&b, block.clone())
//!     .write(&c, block.clone())
//!     .launch();
//! ctx.task(add)
//!     .read(&c, block.clone())
//!     .read(&d, block.clone())
//!     .write(&e, block)
//!     .launch();
//! drop(c); // c becomes a temporary
//! ctx.flush();
//!
//! assert_eq!(ctx.read_store(&e).unwrap(), vec![6.0; 64]);
//! let stats = ctx.stats();
//! assert_eq!(stats.tasks_submitted, 2);
//! assert_eq!(stats.tasks_launched, 1, "both adds fused into one launch");
//! assert_eq!(stats.library("mylib").unwrap().tasks_submitted, 2);
//! ```

pub mod config;
pub mod context;
pub mod handle;
pub mod launch;
pub mod library;
pub mod stats;

pub use config::{AnalyzeMode, DiffuseConfig};
pub use context::Context;
pub use handle::StoreHandle;
pub use launch::LaunchBuilder;
pub use library::{Library, LibraryBuilder};
pub use stats::{ExecutionStats, LibraryStats};
// Re-exported so applications can pick a runtime executor or kernel backend
// without depending on the `runtime`/`kernel` crates directly, and so library
// crates can name kinds and signatures through `diffuse` alone.
pub use kernel::BackendKind;
pub use kernel::{ArgSpec, LibraryId, TaskKind, TaskSignature};
pub use runtime::ExecutorKind;
// The why-not explainer surface (`docs/ANALYZE.md`): `Context::explain`
// returns the fusible segmentation of the buffered window with a classified
// reason and a suggestion per split boundary.
pub use fusion::{BoundaryReport, DepClass, WindowReport};
// The fault-injection surface (`docs/RESILIENCE.md`): applications configure
// a plan and recovery policy on `DiffuseConfig` and read the outcome back
// through `ExecutionStats` and `Context::take_failures`.
pub use runtime::{FaultEvent, FaultPlan, FaultSite, FaultStats, LaunchFailure, RecoveryPolicy, RuntimeError};
