//! Statistics reported by the Diffuse layer.

/// Per-library attribution of the task stream: what one registered library
/// contributed and what happened to its tasks.
///
/// Fused launches may span several libraries (the cross-library composition
/// of Section 2); their simulated time is split across the participating
/// libraries proportionally to each library's constituent-task count in the
/// launch.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct LibraryStats {
    /// The library's registered name (names need not be unique: registering a
    /// library twice yields two entries).
    pub library: String,
    /// Index tasks this library submitted.
    pub tasks_submitted: u64,
    /// Launches that contained at least one of this library's tasks (a fused
    /// launch counts once per participating library).
    pub launches: u64,
    /// Launches shared with at least one *other* library — the cross-library
    /// fusion the paper's composition story depends on.
    pub cross_library_launches: u64,
    /// Simulated seconds attributed to this library's tasks.
    pub simulated_time: f64,
}

impl LibraryStats {
    fn since(&self, earlier: Option<&LibraryStats>) -> LibraryStats {
        let zero = LibraryStats::default();
        let e = earlier.unwrap_or(&zero);
        LibraryStats {
            library: self.library.clone(),
            tasks_submitted: self.tasks_submitted - e.tasks_submitted,
            launches: self.launches - e.launches,
            cross_library_launches: self.cross_library_launches - e.cross_library_launches,
            simulated_time: self.simulated_time - e.simulated_time,
        }
    }
}

/// Counters describing what Diffuse did to the task stream. The benchmark
/// harness uses these to regenerate Figure 9 (tasks per iteration with and
/// without fusion, window sizes) and Figure 13 (compilation time).
#[derive(Debug, Clone, PartialEq, Default)]
pub struct ExecutionStats {
    /// Index tasks submitted by libraries.
    pub tasks_submitted: u64,
    /// Index tasks actually launched on the runtime (fused tasks count once).
    pub tasks_launched: u64,
    /// Launches that combined two or more submitted tasks.
    pub fused_tasks: u64,
    /// Submitted tasks that the horizontal pass packed into a merged launch
    /// group: constituents of groups combining two or more independent
    /// fusible segments (counted at plan time, per flushed window).
    pub horizontally_fused_tasks: u64,
    /// Fused launches whose constituent tasks came from more than one
    /// registered library (the cross-library windows of Section 2).
    pub cross_library_fused_tasks: u64,
    /// Windows analyzed.
    pub windows_flushed: u64,
    /// Distinct kernels JIT-compiled (memoization misses that compiled code).
    pub compilations: u64,
    /// Simulated seconds spent JIT-compiling fused kernels.
    pub compile_time: f64,
    /// Memoization cache hits.
    pub memo_hits: u64,
    /// Memoization cache misses.
    pub memo_misses: u64,
    /// Memoization entries evicted to stay within the configured capacity
    /// (`DiffuseConfig::memo_capacity`).
    pub memo_evictions: u64,
    /// Temporary stores demoted to task-local allocations (Definition 4).
    pub temporaries_eliminated: u64,
    /// Distributed allocations that were never performed because the store
    /// only ever existed as a task-local temporary.
    pub distributed_allocations_avoided: u64,
    /// Individual invariant checks performed by the post-pass verifiers
    /// (`kernel::verify` + `fusion::verify`; zero unless
    /// `DiffuseConfig::enable_verification` is on).
    pub verification_checks: u64,
    /// Privilege-precision lint warnings: task kinds that declared a write or
    /// reduce privilege their generated kernel never exercises (reported once
    /// per kind; over-broad privileges silently inhibit fusion).
    pub privilege_lint_warnings: u64,
    /// Launch arguments whose declared privilege the footprint analyzer
    /// narrowed to read (`AnalyzeMode::Inferred`; zero in declared mode).
    pub privileges_tightened: u64,
    /// Window splits whose offending dependence edge classified as carried
    /// with a constant launch-point distance (`fusion::DepClass::Carried`) —
    /// candidates for a halo exchange.
    pub rejections_carried: u64,
    /// Window splits whose dependence edge could not be classified
    /// (aliasing partitions, sub-tile shifts, or inexact kernel summaries).
    pub rejections_unknown: u64,
    /// Window splits caused by a launch-domain mismatch.
    pub rejections_domain_mismatch: u64,
    /// Window splits caused by the reduction constraint.
    pub rejections_reduction: u64,
    /// The window size currently selected by the adaptive policy.
    pub current_window_size: u64,
    /// Simulated faults injected by the active `FaultPlan` (zero when fault
    /// injection is off; see `docs/RESILIENCE.md`).
    pub faults_injected: u64,
    /// Recovery retries performed (each priced on the simulated clock with
    /// exponential backoff).
    pub retries: u64,
    /// Launches that ran degraded: exhausted their device-retry budget and
    /// migrated off a struck GPU, or fell back a backend tier after an
    /// injected compile fault.
    pub degraded_launches: u64,
    /// Launches abandoned because recovery was disabled; their dependence
    /// cones failed with them.
    pub abandoned_launches: u64,
    /// Simulated seconds charged for recovery (backoff waits and machine
    /// restarts) — measured, not free, like compile time.
    pub recovery_sim_time: f64,
    /// Per-library attribution, indexed by `LibraryId` registration order.
    pub per_library: Vec<LibraryStats>,
}

impl ExecutionStats {
    /// The difference between two snapshots (`self - earlier`); used to report
    /// per-iteration numbers. Libraries registered after the earlier snapshot
    /// diff against zero.
    pub fn since(&self, earlier: &ExecutionStats) -> ExecutionStats {
        ExecutionStats {
            tasks_submitted: self.tasks_submitted - earlier.tasks_submitted,
            tasks_launched: self.tasks_launched - earlier.tasks_launched,
            fused_tasks: self.fused_tasks - earlier.fused_tasks,
            horizontally_fused_tasks: self.horizontally_fused_tasks
                - earlier.horizontally_fused_tasks,
            cross_library_fused_tasks: self.cross_library_fused_tasks
                - earlier.cross_library_fused_tasks,
            windows_flushed: self.windows_flushed - earlier.windows_flushed,
            compilations: self.compilations - earlier.compilations,
            compile_time: self.compile_time - earlier.compile_time,
            memo_hits: self.memo_hits - earlier.memo_hits,
            memo_misses: self.memo_misses - earlier.memo_misses,
            memo_evictions: self.memo_evictions - earlier.memo_evictions,
            temporaries_eliminated: self.temporaries_eliminated - earlier.temporaries_eliminated,
            distributed_allocations_avoided: self.distributed_allocations_avoided
                - earlier.distributed_allocations_avoided,
            verification_checks: self.verification_checks - earlier.verification_checks,
            privilege_lint_warnings: self.privilege_lint_warnings
                - earlier.privilege_lint_warnings,
            privileges_tightened: self.privileges_tightened - earlier.privileges_tightened,
            rejections_carried: self.rejections_carried - earlier.rejections_carried,
            rejections_unknown: self.rejections_unknown - earlier.rejections_unknown,
            rejections_domain_mismatch: self.rejections_domain_mismatch
                - earlier.rejections_domain_mismatch,
            rejections_reduction: self.rejections_reduction - earlier.rejections_reduction,
            current_window_size: self.current_window_size,
            faults_injected: self.faults_injected - earlier.faults_injected,
            retries: self.retries - earlier.retries,
            degraded_launches: self.degraded_launches - earlier.degraded_launches,
            abandoned_launches: self.abandoned_launches - earlier.abandoned_launches,
            recovery_sim_time: self.recovery_sim_time - earlier.recovery_sim_time,
            per_library: self
                .per_library
                .iter()
                .enumerate()
                .map(|(i, lib)| lib.since(earlier.per_library.get(i)))
                .collect(),
        }
    }

    /// The per-library entry with the given registered name, if any (the
    /// first match when a name was registered more than once).
    pub fn library(&self, name: &str) -> Option<&LibraryStats> {
        self.per_library.iter().find(|l| l.library == name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn since_subtracts_counters() {
        let early = ExecutionStats {
            tasks_submitted: 10,
            tasks_launched: 4,
            ..Default::default()
        };
        let late = ExecutionStats {
            tasks_submitted: 30,
            tasks_launched: 9,
            current_window_size: 20,
            ..Default::default()
        };
        let d = late.since(&early);
        assert_eq!(d.tasks_submitted, 20);
        assert_eq!(d.tasks_launched, 5);
        assert_eq!(d.current_window_size, 20);
    }

    #[test]
    fn since_handles_libraries_registered_between_snapshots() {
        let lib = |name: &str, submitted: u64| LibraryStats {
            library: name.into(),
            tasks_submitted: submitted,
            ..Default::default()
        };
        let early = ExecutionStats {
            per_library: vec![lib("dense", 3)],
            ..Default::default()
        };
        let late = ExecutionStats {
            per_library: vec![lib("dense", 10), lib("sparse", 4)],
            ..Default::default()
        };
        let d = late.since(&early);
        assert_eq!(d.per_library.len(), 2);
        assert_eq!(d.library("dense").unwrap().tasks_submitted, 7);
        // Registered after the early snapshot: diffs against zero.
        assert_eq!(d.library("sparse").unwrap().tasks_submitted, 4);
        assert!(d.library("stencil").is_none());
    }
}
