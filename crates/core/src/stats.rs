//! Statistics reported by the Diffuse layer.

/// Counters describing what Diffuse did to the task stream. The benchmark
/// harness uses these to regenerate Figure 9 (tasks per iteration with and
/// without fusion, window sizes) and Figure 13 (compilation time).
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct ExecutionStats {
    /// Index tasks submitted by libraries.
    pub tasks_submitted: u64,
    /// Index tasks actually launched on the runtime (fused tasks count once).
    pub tasks_launched: u64,
    /// Launches that combined two or more submitted tasks.
    pub fused_tasks: u64,
    /// Windows analyzed.
    pub windows_flushed: u64,
    /// Distinct kernels JIT-compiled (memoization misses that compiled code).
    pub compilations: u64,
    /// Simulated seconds spent JIT-compiling fused kernels.
    pub compile_time: f64,
    /// Memoization cache hits.
    pub memo_hits: u64,
    /// Memoization cache misses.
    pub memo_misses: u64,
    /// Memoization entries evicted to stay within the configured capacity
    /// (`DiffuseConfig::memo_capacity`).
    pub memo_evictions: u64,
    /// Temporary stores demoted to task-local allocations (Definition 4).
    pub temporaries_eliminated: u64,
    /// Distributed allocations that were never performed because the store
    /// only ever existed as a task-local temporary.
    pub distributed_allocations_avoided: u64,
    /// The window size currently selected by the adaptive policy.
    pub current_window_size: u64,
}

impl ExecutionStats {
    /// The difference between two snapshots (`self - earlier`); used to report
    /// per-iteration numbers.
    pub fn since(&self, earlier: &ExecutionStats) -> ExecutionStats {
        ExecutionStats {
            tasks_submitted: self.tasks_submitted - earlier.tasks_submitted,
            tasks_launched: self.tasks_launched - earlier.tasks_launched,
            fused_tasks: self.fused_tasks - earlier.fused_tasks,
            windows_flushed: self.windows_flushed - earlier.windows_flushed,
            compilations: self.compilations - earlier.compilations,
            compile_time: self.compile_time - earlier.compile_time,
            memo_hits: self.memo_hits - earlier.memo_hits,
            memo_misses: self.memo_misses - earlier.memo_misses,
            memo_evictions: self.memo_evictions - earlier.memo_evictions,
            temporaries_eliminated: self.temporaries_eliminated - earlier.temporaries_eliminated,
            distributed_allocations_avoided: self.distributed_allocations_avoided
                - earlier.distributed_allocations_avoided,
            current_window_size: self.current_window_size,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn since_subtracts_counters() {
        let early = ExecutionStats {
            tasks_submitted: 10,
            tasks_launched: 4,
            ..Default::default()
        };
        let late = ExecutionStats {
            tasks_submitted: 30,
            tasks_launched: 9,
            current_window_size: 20,
            ..Default::default()
        };
        let d = late.since(&early);
        assert_eq!(d.tasks_submitted, 20);
        assert_eq!(d.tasks_launched, 5);
        assert_eq!(d.current_window_size, 20);
    }
}
