//! The typed launch builder: role-checked task submission.
//!
//! [`LaunchBuilder`] replaces hand-assembled `Vec<StoreArg>` submissions with
//! a typed, self-describing call chain:
//!
//! ```text
//! ctx.task(kind).read(&x, px).write(&y, py).scalar(alpha).launch();
//! ```
//!
//! At submission the builder resolves the kind against the generator
//! registry (an unregistered kind fails *here*, with the library and op
//! spelled out, not deep inside the kernel pipeline) and, in debug builds,
//! validates the launch against the operation's declared
//! [`TaskSignature`](kernel::TaskSignature): argument arity, per-argument
//! privilege against the declared role, and scalar arity.

use ir::{Domain, PartitionId, Privilege, ReductionOp, StoreArg, TaskId};
use kernel::TaskKind;

use crate::context::Context;
use crate::handle::StoreHandle;

/// A task launch under construction. Created by [`Context::task`]; consumed
/// by [`LaunchBuilder::launch`].
#[derive(Debug)]
#[must_use = "a LaunchBuilder does nothing until .launch() is called"]
pub struct LaunchBuilder {
    ctx: Context,
    kind: TaskKind,
    name: Option<String>,
    domain: Option<Domain>,
    args: Vec<StoreArg>,
    scalars: Vec<f64>,
}

impl LaunchBuilder {
    pub(crate) fn new(ctx: Context, kind: TaskKind) -> Self {
        LaunchBuilder {
            ctx,
            kind,
            name: None,
            domain: None,
            args: Vec::new(),
            scalars: Vec::new(),
        }
    }

    /// Overrides the task name shown in profiles and fused-task names. By
    /// default the operation's registered name is used.
    pub fn name(mut self, name: &str) -> Self {
        self.name = Some(name.to_string());
        self
    }

    /// Sets an explicit launch domain. By default the launch covers one point
    /// per GPU (`Domain::linear(gpus)`).
    pub fn domain(mut self, domain: Domain) -> Self {
        self.domain = Some(domain);
        self
    }

    /// Appends a read argument: `store` accessed through `partition`.
    pub fn read(self, store: &StoreHandle, partition: impl Into<PartitionId>) -> Self {
        self.access(store, partition, Privilege::Read)
    }

    /// Appends a write argument.
    pub fn write(self, store: &StoreHandle, partition: impl Into<PartitionId>) -> Self {
        self.access(store, partition, Privilege::Write)
    }

    /// Appends a read-write argument.
    pub fn read_write(self, store: &StoreHandle, partition: impl Into<PartitionId>) -> Self {
        self.access(store, partition, Privilege::ReadWrite)
    }

    /// Appends a reduction argument with the given operator.
    pub fn reduce(
        self,
        store: &StoreHandle,
        partition: impl Into<PartitionId>,
        op: ReductionOp,
    ) -> Self {
        self.access(store, partition, Privilege::Reduce(op))
    }

    /// Appends an argument with an explicit privilege.
    pub fn access(
        mut self,
        store: &StoreHandle,
        partition: impl Into<PartitionId>,
        privilege: Privilege,
    ) -> Self {
        self.args.push(StoreArg::new(store.id(), partition, privilege));
        self
    }

    /// Appends a pre-built [`StoreArg`] (escape hatch for callers that
    /// already hold one).
    pub fn arg(mut self, arg: StoreArg) -> Self {
        self.args.push(arg);
        self
    }

    /// Appends one scalar parameter.
    pub fn scalar(mut self, value: f64) -> Self {
        self.scalars.push(value);
        self
    }

    /// Appends several scalar parameters.
    pub fn scalars(mut self, values: &[f64]) -> Self {
        self.scalars.extend_from_slice(values);
        self
    }

    /// Validates the launch against the operation's declared signature and
    /// submits it into the context's task window.
    ///
    /// # Panics
    ///
    /// Panics if the kind is not registered on this context. In debug builds,
    /// additionally panics if the argument count, any argument's privilege,
    /// or the scalar count disagrees with the registered
    /// [`TaskSignature`](kernel::TaskSignature).
    pub fn launch(self) -> TaskId {
        let LaunchBuilder {
            ctx,
            kind,
            name,
            domain,
            args,
            scalars,
        } = self;
        ctx.submit_built(kind, name, domain, args, scalars)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::DiffuseConfig;
    use ir::Partition;
    use kernel::{BufferId, BufferRole, KernelModule, LoopBuilder, TaskSignature};
    use machine::MachineConfig;

    fn ctx() -> Context {
        Context::new(DiffuseConfig::fused(MachineConfig::with_gpus(2)))
    }

    fn register_scale(ctx: &Context) -> TaskKind {
        let lib = ctx.register_library("t");
        lib.register(
            "scale",
            TaskSignature::new().read().write().scalars(1),
            |_args| {
                let mut m = KernelModule::new(2);
                m.set_role(BufferId(1), BufferRole::Output);
                let mut b = LoopBuilder::new("scale", BufferId(1));
                let x = b.load(BufferId(0));
                let p = b.param(0);
                let v = b.mul(x, p);
                b.store(BufferId(1), v);
                m.push_loop(b.finish());
                m
            },
        )
    }

    #[test]
    fn builder_launch_runs_the_kernel() {
        let ctx = ctx();
        let scale = register_scale(&ctx);
        let n = 16u64;
        let p = Partition::block(vec![n / 2]);
        let a = ctx.create_store(vec![n], "a");
        let out = ctx.create_store(vec![n], "out");
        ctx.fill(&a, 3.0);
        ctx.task(scale)
            .read(&a, p.clone())
            .write(&out, p)
            .scalar(2.0)
            .launch();
        ctx.flush();
        assert_eq!(ctx.read_store(&out).unwrap(), vec![6.0; 16]);
    }

    #[test]
    fn default_name_is_the_registered_op_name() {
        let ctx = ctx();
        let scale = register_scale(&ctx);
        // The name is observable through the launch itself only via profiles;
        // here we just check the builder accepts an override without panicking
        // and the default path works.
        let n = 4u64;
        let p = Partition::block(vec![n / 2]);
        let a = ctx.create_store(vec![n], "a");
        let out = ctx.create_store(vec![n], "out");
        ctx.fill(&a, 1.0);
        ctx.task(scale)
            .name("my_scale")
            .read(&a, p.clone())
            .write(&out, p)
            .scalar(4.0)
            .launch();
        ctx.flush();
        assert_eq!(ctx.read_store(&out).unwrap(), vec![4.0; 4]);
    }

    #[test]
    #[should_panic(expected = "not registered")]
    fn unregistered_kind_fails_at_submission() {
        let ctx = ctx();
        let bogus = TaskKind { library: kernel::LibraryId(7), op: 3 };
        let a = ctx.create_store(vec![4], "a");
        let _ = ctx.task(bogus).write(&a, Partition::block(vec![2])).launch();
    }

    #[test]
    #[cfg_attr(debug_assertions, should_panic(expected = "expects 2 store arguments"))]
    fn arity_mismatch_fails_at_submission_in_debug() {
        let ctx = ctx();
        let scale = register_scale(&ctx);
        let a = ctx.create_store(vec![4], "a");
        let id = ctx
            .task(scale)
            .read(&a, Partition::block(vec![2]))
            .scalar(1.0)
            .launch();
        // Release builds skip signature validation; the launch id is returned.
        let _ = id;
        // In release mode make the test trivially pass by panicking is NOT
        // desired; the cfg_attr above only expects the panic under debug.
        #[cfg(debug_assertions)]
        unreachable!("debug validation must have rejected the launch");
    }

    #[test]
    #[cfg_attr(debug_assertions, should_panic(expected = "privilege"))]
    fn privilege_mismatch_fails_at_submission_in_debug() {
        let ctx = ctx();
        let scale = register_scale(&ctx);
        let p = Partition::block(vec![2]);
        let a = ctx.create_store(vec![4], "a");
        let out = ctx.create_store(vec![4], "out");
        // The signature declares read, write — submit write, write.
        let _ = ctx
            .task(scale)
            .write(&a, p.clone())
            .write(&out, p)
            .scalar(1.0)
            .launch();
        #[cfg(debug_assertions)]
        unreachable!("debug validation must have rejected the launch");
    }

    #[test]
    #[cfg_attr(debug_assertions, should_panic(expected = "scalar"))]
    fn scalar_arity_mismatch_fails_at_submission_in_debug() {
        let ctx = ctx();
        let scale = register_scale(&ctx);
        let p = Partition::block(vec![2]);
        let a = ctx.create_store(vec![4], "a");
        let out = ctx.create_store(vec![4], "out");
        let _ = ctx.task(scale).read(&a, p.clone()).write(&out, p).launch();
        #[cfg(debug_assertions)]
        unreachable!("debug validation must have rejected the launch");
    }
}
