//! Cross-library fusion: the composition claim of the paper, end to end.
//!
//! Three independently written libraries — `dense` (cuPyNumeric-style),
//! `sparse` (Legate-Sparse-style) and `stencil` — are registered on one
//! Diffuse context and exchange nothing but store handles. A
//! dense→sparse→stencil→dense task sequence submitted without intervening
//! flushes must land in **one fused launch**, and the result must be
//! bit-identical to the unfused baseline under every executor × backend
//! combination.

use dense::DenseContext;
use diffuse::{BackendKind, Context, DiffuseConfig, ExecutorKind};
use machine::MachineConfig;
use sparse::{CsrMatrix, SparseContext};
use stencil::StencilContext;

const GPUS: usize = 2;
const N: u64 = 32; // divisible by the GPU count; stencil interior of an N+2 grid

/// Runs the three-library pipeline once and returns
/// (checksum, final vector, stats).
fn run_pipeline(
    fused: bool,
    executor: ExecutorKind,
    backend: BackendKind,
) -> (f64, Vec<f64>, diffuse::ExecutionStats) {
    let machine = MachineConfig::with_gpus(GPUS);
    let config = if fused {
        DiffuseConfig::fused(machine)
    } else {
        DiffuseConfig::unfused(machine)
    }
    .with_executor(executor)
    .with_backend(backend);
    let ctx = Context::new(config);

    // Three peer libraries over one context.
    let np = DenseContext::new(ctx.clone());
    let sp = SparseContext::new(&ctx);
    let st = StencilContext::new(&ctx);

    // Host-initialized inputs (no tasks yet): a tridiagonal Laplacian, an
    // input vector, and a ghost-bordered 1-D grid.
    let a = CsrMatrix::from_dense(&sp, N, N, &|r, c| {
        if r == c {
            2.0
        } else if r.abs_diff(c) == 1 {
            -1.0
        } else {
            0.0
        }
    });
    let x = np.from_vec(&[N], (0..N).map(|i| (i % 7) as f64 + 0.5).collect());
    let grid = ctx.create_store(vec![N + 2], "grid");
    ctx.write_store(&grid, (0..N + 2).map(|i| ((i * 3) % 5) as f64).collect());
    let smoothed = ctx.create_store(vec![N + 2], "smoothed");

    let stats0 = ctx.stats();
    // The cross-library window: sparse SpMV → dense scaling → stencil star →
    // dense combine → dense reduction, submitted back to back. Every
    // dependence between the tasks is point-wise (reads go through exactly
    // the partitions the values were written with), so the fusion constraints
    // admit the whole sequence as one prefix.
    let y = np.wrap(a.spmv(x.handle())); // sparse
    let z = y.scalar_mul(0.5); // dense
    st.star_1d(&grid, &smoothed, [0.5, 0.25, 0.25]); // stencil
    let w = np.wrap(smoothed.clone()).slice_1d(1..N + 1).mul(&z); // dense, reads the stencil output
    let total = w.sum(); // dense reduction
    ctx.flush();
    let stats = ctx.stats().since(&stats0);

    let checksum = total.scalar_value().expect("functional run");
    let w_data = w.to_vec().expect("functional run");
    (checksum, w_data, stats)
}

#[test]
fn dense_sparse_stencil_sequence_lands_in_one_fused_window() {
    let (checksum, _, stats) = run_pipeline(true, ExecutorKind::Serial, BackendKind::Interp);
    assert!(checksum.is_finite());
    assert_eq!(stats.tasks_submitted, 5);
    assert_eq!(
        stats.tasks_launched, 1,
        "the whole three-library sequence must fuse into one launch: {stats:?}"
    );
    assert_eq!(stats.fused_tasks, 1);
    assert_eq!(stats.cross_library_fused_tasks, 1);
    // Every library participated in the shared launch and is attributed.
    for lib in ["dense", "sparse", "stencil"] {
        let ls = stats.library(lib).unwrap_or_else(|| panic!("no stats for {lib}"));
        assert_eq!(ls.launches, 1, "{lib} must appear in exactly one launch");
        assert_eq!(
            ls.cross_library_launches, 1,
            "{lib}'s launch must be shared with other libraries"
        );
        assert!(ls.simulated_time > 0.0, "{lib} must be charged time");
    }
    assert_eq!(stats.library("dense").unwrap().tasks_submitted, 3);
    assert_eq!(stats.library("sparse").unwrap().tasks_submitted, 1);
    assert_eq!(stats.library("stencil").unwrap().tasks_submitted, 1);
}

#[test]
fn checksums_are_invariant_across_fusion_executors_and_backends() {
    let executors = [
        ExecutorKind::Serial,
        ExecutorKind::WorkStealing { workers: Some(2) },
    ];
    let backends = [BackendKind::Interp, BackendKind::Closure, BackendKind::Simd];
    let (reference, reference_w, fused_stats) =
        run_pipeline(true, ExecutorKind::Serial, BackendKind::Interp);
    let (unfused_ref, unfused_w, unfused_stats) =
        run_pipeline(false, ExecutorKind::Serial, BackendKind::Interp);
    // Fusion changes the schedule, not the values…
    assert_eq!(reference.to_bits(), unfused_ref.to_bits());
    assert_eq!(reference_w, unfused_w);
    // …and it strictly reduces the launch count.
    assert!(
        fused_stats.tasks_launched < unfused_stats.tasks_launched,
        "fused {} vs unfused {} launches",
        fused_stats.tasks_launched,
        unfused_stats.tasks_launched
    );
    assert_eq!(unfused_stats.tasks_launched, 5);
    assert_eq!(unfused_stats.cross_library_fused_tasks, 0);
    // Bit-identical across every executor × backend × fusion combination.
    for &fused in &[true, false] {
        for &executor in &executors {
            for &backend in &backends {
                let (checksum, w, _) = run_pipeline(fused, executor, backend);
                assert_eq!(
                    checksum.to_bits(),
                    reference.to_bits(),
                    "fused={fused} executor={executor:?} backend={backend:?}"
                );
                assert_eq!(w, reference_w);
            }
        }
    }
}
