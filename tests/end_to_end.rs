//! Cross-crate integration tests: applications built on the dense and sparse
//! libraries, run through Diffuse onto the Legion-style runtime, must produce
//! identical results with and without fusion, while fusion reduces the number
//! of launched tasks and the simulated execution time.

use apps::Mode;

#[test]
fn every_application_is_correct_under_fusion() {
    // (name, fused checksum, unfused checksum, fused launches, unfused tasks)
    let cases: Vec<(&str, apps::BenchmarkResult, apps::BenchmarkResult)> = vec![
        (
            "black_scholes",
            apps::black_scholes::run(Mode::Fused, 4, 64, 2, true),
            apps::black_scholes::run(Mode::Unfused, 4, 64, 2, true),
        ),
        (
            "jacobi",
            apps::jacobi::run(Mode::Fused, 4, 64, 3, true),
            apps::jacobi::run(Mode::Unfused, 4, 64, 3, true),
        ),
        (
            "cg",
            apps::cg::run(Mode::Fused, 4, 64, 8, true),
            apps::cg::run(Mode::Unfused, 4, 64, 8, true),
        ),
        (
            "bicgstab",
            apps::bicgstab::run(Mode::Fused, 4, 64, 6, true),
            apps::bicgstab::run(Mode::Unfused, 4, 64, 6, true),
        ),
        (
            "gmg",
            apps::gmg::run(Mode::Fused, 4, 32, 3, true),
            apps::gmg::run(Mode::Unfused, 4, 32, 3, true),
        ),
        (
            "cfd",
            apps::cfd::run(Mode::Fused, 4, 8, 3, true),
            apps::cfd::run(Mode::Unfused, 4, 8, 3, true),
        ),
        (
            "torchswe",
            apps::torchswe::run(Mode::Fused, 4, 8, 3, true),
            apps::torchswe::run(Mode::Unfused, 4, 8, 3, true),
        ),
    ];
    for (name, fused, unfused) in cases {
        let (a, b) = (fused.checksum.unwrap(), unfused.checksum.unwrap());
        assert!(
            (a - b).abs() <= 1e-9 * a.abs().max(1.0),
            "{name}: fused checksum {a} differs from unfused {b}"
        );
        assert!(
            fused.launches_per_iteration <= unfused.tasks_per_iteration,
            "{name}: fusion must not increase the launch count"
        );
    }
}

#[test]
fn fusion_improves_or_preserves_simulated_performance() {
    // At machine-scale problem sizes (simulation only), the fused variant must
    // be at least as fast as the unfused variant for every application, and
    // strictly faster for the fusion-heavy ones.
    let fusion_heavy: Vec<(&str, f64, f64)> = vec![
        (
            "black_scholes",
            apps::black_scholes::run(Mode::Fused, 8, 1 << 24, 5, false).throughput,
            apps::black_scholes::run(Mode::Unfused, 8, 1 << 24, 5, false).throughput,
        ),
        (
            "cfd",
            apps::cfd::run(Mode::Fused, 8, 1 << 14, 5, false).throughput,
            apps::cfd::run(Mode::Unfused, 8, 1 << 14, 5, false).throughput,
        ),
        (
            "torchswe",
            apps::torchswe::run(Mode::Fused, 8, 1 << 14, 5, false).throughput,
            apps::torchswe::run(Mode::Unfused, 8, 1 << 14, 5, false).throughput,
        ),
        (
            "gmg",
            apps::gmg::run(Mode::Fused, 8, 1 << 22, 5, false).throughput,
            apps::gmg::run(Mode::Unfused, 8, 1 << 22, 5, false).throughput,
        ),
    ];
    for (name, fused, unfused) in fusion_heavy {
        assert!(
            fused > unfused,
            "{name}: fused throughput {fused} should exceed unfused {unfused}"
        );
    }
    // Jacobi has nothing to fuse: Diffuse must not slow it down appreciably.
    let fused = apps::jacobi::run(Mode::Fused, 8, 1 << 28, 5, false).throughput;
    let unfused = apps::jacobi::run(Mode::Unfused, 8, 1 << 28, 5, false).throughput;
    assert!(fused >= unfused * 0.9, "jacobi: {fused} vs {unfused}");
}

#[test]
fn solvers_match_the_petsc_baseline_functionally() {
    let cg_diffuse = apps::cg::run(Mode::Fused, 2, 128, 30, true);
    let cg_petsc = apps::cg::run(Mode::Petsc, 2, 128, 30, true);
    assert!(cg_diffuse.checksum.unwrap() < 1e-6);
    assert!(cg_petsc.checksum.unwrap() < 1e-6);

    let bi_diffuse = apps::bicgstab::run(Mode::Fused, 2, 128, 25, true);
    let bi_petsc = apps::bicgstab::run(Mode::Petsc, 2, 128, 25, true);
    assert!(bi_diffuse.checksum.unwrap() < 1e-6);
    assert!(bi_petsc.checksum.unwrap() < 1e-6);
}

#[test]
fn weak_scaling_throughput_is_roughly_flat_for_black_scholes() {
    // Per-GPU throughput should not collapse as the machine grows (Figure 10a
    // is flat for the fused configuration).
    let small = apps::black_scholes::run(Mode::Fused, 1, 1 << 22, 5, false).throughput;
    let large = apps::black_scholes::run(Mode::Fused, 64, 1 << 22, 5, false).throughput;
    assert!(
        large > small * 0.5,
        "fused Black-Scholes throughput collapsed: {small} -> {large}"
    );
}

#[test]
fn diffuse_umbrella_crate_re_exports_everything() {
    // The root crate exposes the whole stack under one name.
    let config = diffuse_repro::machine::MachineConfig::with_gpus(8);
    assert_eq!(config.total_gpus(), 8);
    let _ = diffuse_repro::ir::Partition::block(vec![8]);
    let _ = diffuse_repro::kernel::KernelModule::new(1);
}
